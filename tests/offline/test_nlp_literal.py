"""Cross-checks between the literal Section 3.2 formulation and the reduced one."""

import pytest

from repro.core.task import Task
from repro.offline.evaluation import average_case_energy
from repro.offline.nlp import SolverOptions
from repro.offline.nlp_literal import LiteralNLPScheduler
from repro.offline.nonpreemptive import frame_based_taskset
from repro.offline.wcs import WCSScheduler


@pytest.fixture
def small_frame():
    """Three-task non-preemptive frame (small enough for the 6-variables-per-sub-instance NLP)."""
    tasks = [
        Task(f"T{i}", period=20, wcec=6000, acec=2400, bcec=1200)
        for i in range(1, 4)
    ]
    return frame_based_taskset(tasks, 20.0)


class TestLiteralFormulation:
    def test_produces_valid_schedule(self, small_frame, processor):
        schedule = LiteralNLPScheduler(processor).schedule(small_frame)
        schedule.validate(processor)
        assert schedule.method == "acs_literal"

    def test_not_worse_than_wcs_in_average_case(self, small_frame, processor):
        literal = LiteralNLPScheduler(processor).schedule(small_frame)
        wcs = WCSScheduler(processor).schedule(small_frame)
        assert average_case_energy(literal, processor) <= average_case_energy(wcs, processor) * 1.05

    def test_close_to_reduced_formulation(self, small_frame, processor):
        """Both formulations model the same problem; their average-case energies should agree
        within a loose tolerance (different parameterisations, same optimum region)."""
        from repro.offline.acs import ACSScheduler
        literal = LiteralNLPScheduler(processor).schedule(small_frame)
        reduced = ACSScheduler(processor).schedule(small_frame)
        literal_energy = average_case_energy(literal, processor)
        reduced_energy = average_case_energy(reduced, processor)
        # The literal formulation is non-convex and SLSQP may stop at a slightly
        # worse local point; require agreement within 30 %.
        assert literal_energy == pytest.approx(reduced_energy, rel=0.30)

    def test_preemptive_small_set(self, two_task_set, processor):
        schedule = LiteralNLPScheduler(processor, options=SolverOptions(maxiter=80)).schedule(two_task_set)
        schedule.validate(processor)
        for instance in schedule.expansion.instances:
            entries = schedule.entries_for_instance(instance)
            assert sum(e.wc_budget for e in entries) == pytest.approx(instance.wcec, rel=1e-6)
