"""Batched offline planner: bitwise equivalence and solve memoization.

``plan_expansions`` runs many schedulers' NLP solves concurrently against a
stacked objective evaluation.  The planner's whole value rests on a hard
promise: every :class:`StaticSchedule` it returns is *bitwise identical* to
the one the scheduler's own sequential ``schedule_expansion`` produces —
same end times, same budgets, same objective value, float for float.  These
tests hold it to that promise across every registered scheduler (including
the scenario-weighted stochastic ACS and the x0-seeded ACS waves), across
cross-task-set batches, and through the content-addressed solve memo (warm
replays must recompute nothing and still hand out fresh, independently
mutable schedule objects).
"""

import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.offline import (
    NLPSolveTask,
    SolveMemo,
    plan_expansions,
    run_program,
    solve_fallback_reason,
    solve_tasks,
)
from repro.offline.acs import ACSScheduler
from repro.offline.baselines import ConstantSpeedScheduler, MaxSpeedScheduler
from repro.offline.nlp import ReducedNLP, SolverOptions
from repro.offline.stochastic import StochasticACSScheduler
from repro.offline.wcs import WCSScheduler


def assert_schedules_identical(left, right):
    """Bitwise equality of everything a schedule reports."""
    assert left.method == right.method
    assert left.end_times() == right.end_times()
    assert left.wc_budgets() == right.wc_budgets()
    assert left.objective_value == right.objective_value
    assert left.metadata == right.metadata


def all_schedulers(processor):
    return {
        "wcs": WCSScheduler(processor),
        "acs": ACSScheduler(processor),
        "acs_stochastic": StochasticACSScheduler(processor, n_scenarios=4),
        "max_speed": MaxSpeedScheduler(processor),
        "constant_speed": ConstantSpeedScheduler(processor),
    }


class TestBitwiseEquivalence:
    def test_batched_planning_matches_sequential_solves(self, processor,
                                                        three_task_set):
        """Every scheduler, one shared batch vs one-at-a-time: bitwise equal."""
        methods = all_schedulers(processor)
        expansion = expand_fully_preemptive(three_task_set)
        sequential = {name: scheduler.schedule_expansion(expansion)
                      for name, scheduler in methods.items()}
        (batched,) = plan_expansions([(expansion, methods)], memo=SolveMemo())
        assert set(batched) == set(sequential)
        for name in sequential:
            assert_schedules_identical(batched[name], sequential[name])

    def test_cross_problem_batch_matches_per_problem_plans(self, processor,
                                                           two_task_set,
                                                           three_task_set):
        """Two task sets' solves interleave in shared waves, bitwise equal."""
        items = [
            (expand_fully_preemptive(two_task_set), all_schedulers(processor)),
            (expand_fully_preemptive(three_task_set), all_schedulers(processor)),
        ]
        batched = plan_expansions(items, memo=SolveMemo())
        for (expansion, methods), group in zip(items, batched):
            for name, scheduler in methods.items():
                assert_schedules_identical(group[name],
                                           scheduler.schedule_expansion(expansion))

    def test_seeded_acs_wave_structure(self, processor, two_task_set):
        """ACS's x0-seeded second wave survives batching bitwise."""
        expansion = expand_fully_preemptive(two_task_set)
        scheduler = ACSScheduler(processor)
        assert scheduler.seed_with_wcs  # the two-wave path is the default
        (batched,) = plan_expansions(
            [(expansion, {"acs": scheduler})], memo=SolveMemo())
        assert_schedules_identical(batched["acs"],
                                   scheduler.schedule_expansion(expansion))

    def test_cmos_law_takes_the_sequential_fallback(self, cmos, two_task_set):
        """Non-linear processors can't stack evaluations; the per-problem
        fallback must still return the bitwise-identical schedule."""
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, cmos, workload_mode="wcec")
        reason = solve_fallback_reason(NLPSolveTask(nlp))
        assert reason is not None and "cmos" in reason
        methods = {"wcs": WCSScheduler(cmos), "acs": ACSScheduler(cmos)}
        (batched,) = plan_expansions([(expansion, methods)], memo=SolveMemo())
        for name, scheduler in methods.items():
            assert_schedules_identical(batched[name],
                                       scheduler.schedule_expansion(expansion))

    def test_non_slsqp_method_takes_the_sequential_fallback(self, processor,
                                                            two_task_set):
        expansion = expand_fully_preemptive(two_task_set)
        options = SolverOptions(method="trust-constr")
        nlp = ReducedNLP(expansion, processor, workload_mode="wcec",
                         options=options)
        reason = solve_fallback_reason(NLPSolveTask(nlp))
        assert reason is not None and "trust-constr" in reason


class TestSolveMemo:
    def test_warm_replan_computes_nothing(self, processor, three_task_set):
        memo = SolveMemo()
        expansion = expand_fully_preemptive(three_task_set)
        methods = all_schedulers(processor)
        (cold,) = plan_expansions([(expansion, methods)], memo=memo)
        computed_cold = memo.computed
        assert computed_cold > 0
        (warm,) = plan_expansions([(expansion, methods)], memo=memo)
        assert memo.computed == computed_cold  # zero new solves
        for name in cold:
            assert_schedules_identical(warm[name], cold[name])

    def test_identical_solves_within_one_wave_are_deduplicated(
            self, processor, two_task_set):
        """WCS's wcec NLP appears once per scheduler that seeds from it, but
        is solved once per wave."""
        memo = SolveMemo()
        expansion = expand_fully_preemptive(two_task_set)
        methods = {"wcs": WCSScheduler(processor), "acs": ACSScheduler(processor)}
        plan_expansions([(expansion, methods)], memo=memo)
        # wcs + (acs plain, acs wcs-seed wave 1, acs seeded wave 2) = 4 tasks,
        # but the two wcec solves coincide -> 3 computed, >= 1 memo hit.
        assert memo.computed == 3
        assert memo.hits >= 1

    def test_replayed_schedules_are_independently_mutable(self, processor,
                                                          two_task_set):
        """Memo replays hand out fresh objects: mutating one result (as the
        stochastic scheduler does with ``method``) must not corrupt the memo."""
        memo = SolveMemo()
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor, workload_mode="wcec")
        (first,) = solve_tasks((NLPSolveTask(nlp),), memo=memo)
        first.method = "mutated"
        nlp2 = ReducedNLP(expansion, processor, workload_mode="wcec")
        (second,) = solve_tasks((NLPSolveTask(nlp2),), memo=memo)
        assert second is not first
        assert second.method != "mutated"

    def test_persistent_memo_survives_a_fresh_process_view(self, processor,
                                                           two_task_set,
                                                           tmp_path):
        """A store-backed memo warms re-runs that never shared memory."""
        from repro.scenarios.store import ResultStore

        expansion = expand_fully_preemptive(two_task_set)
        methods = {"wcs": WCSScheduler(processor), "acs": ACSScheduler(processor)}
        cold_memo = SolveMemo(ResultStore(tmp_path / "memo"))
        (cold,) = plan_expansions([(expansion, methods)], memo=cold_memo)
        assert cold_memo.computed > 0
        # A brand-new memo over the same directory (what a resumed sweep or
        # another worker process sees) replays every solve from disk.
        warm_memo = SolveMemo(ResultStore(tmp_path / "memo"))
        (warm,) = plan_expansions([(expansion, methods)], memo=warm_memo)
        assert warm_memo.computed == 0
        for name in cold:
            assert_schedules_identical(warm[name], cold[name])

    def test_different_processors_never_collide(self, processor, cmos,
                                                two_task_set):
        """The memo key covers the processor: a cmos solve can't serve an
        ideal-processor lookup."""
        memo = SolveMemo()
        expansion = expand_fully_preemptive(two_task_set)
        plan_expansions([(expansion, {"wcs": WCSScheduler(processor)})], memo=memo)
        first = memo.computed
        plan_expansions([(expansion, {"wcs": WCSScheduler(cmos)})], memo=memo)
        assert memo.computed > first

    def test_run_program_rejects_programs_without_a_result(self, processor,
                                                           two_task_set):
        from repro.core.errors import SchedulingError

        def bad_program():
            yield ()
            return None

        with pytest.raises(SchedulingError):
            run_program(bad_program())
