"""Tests for the non-preemptive frame helper (motivational example substrate)."""

import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import InvalidTaskSetError
from repro.core.task import Task
from repro.offline.nonpreemptive import explicit_order_policy, frame_based_taskset


def _tasks():
    return [
        Task("alpha", period=99, wcec=100, acec=50, bcec=10),
        Task("beta", period=7, wcec=200, acec=60, bcec=20),
        Task("gamma", period=42, wcec=300, acec=70, bcec=30),
    ]


class TestFrameBasedTaskset:
    def test_periods_and_deadlines_overridden(self):
        taskset = frame_based_taskset(_tasks(), 50.0)
        for task in taskset:
            assert task.period == 50.0
            assert task.deadline == 50.0
            assert task.phase == 0.0
        assert taskset.hyperperiod == pytest.approx(50.0)

    def test_execution_order_defaults_to_given_order(self):
        taskset = frame_based_taskset(_tasks(), 50.0)
        assert [t.name for t in taskset.sorted_by_priority()] == ["alpha", "beta", "gamma"]

    def test_custom_order(self):
        taskset = frame_based_taskset(_tasks(), 50.0, order=["gamma", "alpha", "beta"])
        assert [t.name for t in taskset.sorted_by_priority()] == ["gamma", "alpha", "beta"]

    def test_expansion_has_single_sub_instance_per_task(self):
        taskset = frame_based_taskset(_tasks(), 50.0)
        expansion = expand_fully_preemptive(taskset)
        assert len(expansion) == 3
        assert [s.key for s in expansion.sub_instances] == ["alpha[0].0", "beta[0].0", "gamma[0].0"]

    def test_wcec_acec_preserved(self):
        taskset = frame_based_taskset(_tasks(), 50.0)
        assert taskset["beta"].wcec == 200
        assert taskset["beta"].acec == 60
        assert taskset["beta"].bcec == 20

    def test_invalid_frame_length_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            frame_based_taskset(_tasks(), 0.0)


class TestExplicitOrderPolicy:
    def test_unknown_task_rejected(self):
        policy = explicit_order_policy(["alpha", "ghost", "beta", "gamma"])
        with pytest.raises(InvalidTaskSetError):
            policy(_tasks())

    def test_missing_task_rejected(self):
        policy = explicit_order_policy(["alpha", "beta"])
        with pytest.raises(InvalidTaskSetError):
            policy(_tasks())

    def test_order_maps_to_increasing_priorities(self):
        policy = explicit_order_policy(["beta", "gamma", "alpha"])
        priorities = policy(_tasks())
        assert priorities == {"beta": 0, "gamma": 1, "alpha": 2}
