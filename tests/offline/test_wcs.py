"""Tests for the WCS baseline scheduler."""

import pytest

from repro.offline.evaluation import worst_case_energy
from repro.offline.wcs import WCSScheduler


class TestWCS:
    def test_two_task_uniform_slowdown_optimum(self, two_task_set, processor):
        """With equal capacitance and the linear law, the optimal WCEC schedule is the uniform
        slowdown: 14000 cycles over 20 ms → 700 cycles/ms everywhere."""
        schedule = WCSScheduler(processor).schedule(two_task_set)
        schedule.validate(processor)
        assert not schedule.metadata["fallback"]
        by_key = {e.key: e for e in schedule}
        assert by_key["A[0].0"].end_time == pytest.approx(3000 / 700, rel=1e-2)
        assert by_key["B[0].0"].end_time == pytest.approx(10.0, rel=1e-2)
        assert by_key["A[1].0"].end_time == pytest.approx(10 + 3000 / 700, rel=1e-2)
        assert by_key["B[0].1"].end_time == pytest.approx(20.0, rel=1e-2)
        # Energy of the uniform-slowdown schedule: 14000 cycles at 3.5 V.
        expected = 14000 * 3.5 ** 2
        assert worst_case_energy(schedule, processor) == pytest.approx(expected, rel=1e-2)

    def test_never_worse_than_fmax_packing(self, three_task_set, processor):
        from repro.offline.baselines import MaxSpeedScheduler
        wcs = WCSScheduler(processor).schedule(three_task_set)
        packed = MaxSpeedScheduler(processor).schedule(three_task_set)
        assert worst_case_energy(wcs, processor) <= worst_case_energy(packed, processor) + 1e-6

    def test_budgets_conserved(self, three_task_set, processor):
        schedule = WCSScheduler(processor).schedule(three_task_set)
        for instance in schedule.expansion.instances:
            entries = schedule.entries_for_instance(instance)
            assert sum(e.wc_budget for e in entries) == pytest.approx(instance.wcec, rel=1e-6)

    def test_name(self, processor):
        assert WCSScheduler(processor).name == "wcs"
