"""Tests for the MaxSpeed and ConstantSpeed baseline schedulers."""

import pytest

from repro.core.errors import InfeasibleTaskSetError
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.baselines import ConstantSpeedScheduler, MaxSpeedScheduler
from repro.offline.evaluation import worst_case_energy


class TestMaxSpeedScheduler:
    def test_valid_schedule(self, three_task_set, processor):
        schedule = MaxSpeedScheduler(processor).schedule(three_task_set)
        schedule.validate(processor)
        assert schedule.method == "max_speed"
        assert schedule.metadata["frequency"] == processor.fmax

    def test_energy_is_the_ceiling(self, two_task_set, processor):
        """Packing at fmax runs every cycle at vmax: the most expensive feasible schedule."""
        schedule = MaxSpeedScheduler(processor).schedule(two_task_set)
        cycles = two_task_set.total_wcec_per_hyperperiod()
        assert worst_case_energy(schedule, processor) == pytest.approx(
            cycles * processor.vmax ** 2, rel=1e-6)


class TestConstantSpeedScheduler:
    def test_uses_breakdown_frequency(self, two_task_set, processor):
        schedule = ConstantSpeedScheduler(processor).schedule(two_task_set)
        schedule.validate(processor)
        assert schedule.metadata["frequency"] < processor.fmax
        assert schedule.method == "constant_speed"

    def test_cheaper_than_max_speed(self, two_task_set, processor):
        constant = ConstantSpeedScheduler(processor).schedule(two_task_set)
        packed = MaxSpeedScheduler(processor).schedule(two_task_set)
        assert worst_case_energy(constant, processor) < worst_case_energy(packed, processor)

    def test_explicit_frequency(self, two_task_set, processor):
        schedule = ConstantSpeedScheduler(processor, frequency=0.9 * processor.fmax).schedule(two_task_set)
        schedule.validate(processor)
        assert schedule.metadata["frequency"] == pytest.approx(0.9 * processor.fmax)

    def test_infeasible_taskset_rejected(self, processor):
        overloaded = TaskSet([Task("a", period=10, wcec=10_500), Task("b", period=20, wcec=1000)])
        with pytest.raises(InfeasibleTaskSetError):
            ConstantSpeedScheduler(processor).schedule(overloaded)
