"""Tests for the analytic (total-order) schedule evaluation."""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import SchedulingError
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.evaluation import (
    CompiledEvaluation,
    average_case_energy,
    evaluate_schedule,
    evaluate_vectors,
    worst_case_energy,
)
from repro.offline.nonpreemptive import frame_based_taskset
from repro.offline.schedule import StaticSchedule


@pytest.fixture
def frame(processor):
    """Two-task non-preemptive frame: hand-computable energies."""
    tasks = [
        Task("t1", period=10, wcec=4000, acec=2000, bcec=1000),
        Task("t2", period=10, wcec=4000, acec=2000, bcec=1000),
    ]
    return frame_based_taskset(tasks, 10.0)


class TestHandComputedFrame:
    def test_worst_case_energy(self, frame, processor):
        """End-times 5 and 10: each task runs 4000 cycles in 5 ms → 800 cyc/ms → 4 V."""
        expansion = expand_fully_preemptive(frame)
        schedule = StaticSchedule.from_vectors(expansion, [5.0, 10.0], [4000.0, 4000.0])
        energy = worst_case_energy(schedule, processor)
        assert energy == pytest.approx(2 * 4000 * 4.0 ** 2)

    def test_average_case_energy_with_greedy_slack(self, frame, processor):
        """Average case: t1 runs 2000 of its 4000-cycle budget at 4 V and finishes at 2.5 ms;
        t2 inherits the slack and runs its worst-case budget over 7.5 ms → 533.3 cyc/ms → 2.67 V."""
        expansion = expand_fully_preemptive(frame)
        schedule = StaticSchedule.from_vectors(expansion, [5.0, 10.0], [4000.0, 4000.0])
        outcome = evaluate_schedule(schedule, processor)
        v2 = processor.voltage_for_frequency(4000.0 / 7.5)
        expected = 2000 * 4.0 ** 2 + 2000 * v2 ** 2
        assert outcome.energy == pytest.approx(expected, rel=1e-9)
        assert outcome.feasible
        assert outcome.finish_times["t1[0]"] == pytest.approx(2.5)

    def test_speed_clipped_at_fmax_when_end_time_passed(self, frame, processor):
        """An end-time in the past forces maximum speed rather than a crash."""
        expansion = expand_fully_preemptive(frame)
        schedule = StaticSchedule.from_vectors(expansion, [0.0, 10.0], [4000.0, 4000.0])
        outcome = evaluate_schedule(schedule, processor)
        # t1 executes its 2000 average cycles at fmax (5 V).
        assert outcome.energy >= 2000 * 5.0 ** 2

    def test_custom_actual_cycles(self, frame, processor):
        expansion = expand_fully_preemptive(frame)
        schedule = StaticSchedule.from_vectors(expansion, [5.0, 10.0], [4000.0, 4000.0])
        outcome = evaluate_schedule(schedule, processor, {"t1[0]": 0.0, "t2[0]": 4000.0})
        # t1 does nothing; t2 runs its full worst case over [0, 10] at 400 cyc/ms → 2 V.
        assert outcome.energy == pytest.approx(4000 * 2.0 ** 2)


class TestVectorsInterface:
    def test_length_mismatch_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            evaluate_vectors(expansion, [1.0], [1.0], processor)

    def test_collect_details_off_still_returns_energy(self, two_task_set, processor):
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(two_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        detailed = evaluate_vectors(expansion, end_times, budgets, processor)
        bare = evaluate_vectors(expansion, end_times, budgets, processor, collect_details=False)
        assert bare.energy == pytest.approx(detailed.energy)
        assert bare.sub_finish_times == []

    def test_average_at_most_worst_case(self, three_task_set, processor):
        """For any schedule, executing ACEC never costs more than executing WCEC."""
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(three_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        schedule = StaticSchedule.from_vectors(expansion, end_times, budgets)
        assert average_case_energy(schedule, processor) <= worst_case_energy(schedule, processor) + 1e-9


class TestCompiledEvaluation:
    """The compiled evaluator must equal evaluate_vectors bit for bit."""

    @staticmethod
    def _expansion(processor):
        taskset = TaskSet([
            Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
            Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
            Task("lo", period=40, wcec=9000, acec=5000, bcec=1500),
        ])
        return expand_fully_preemptive(taskset)

    @staticmethod
    def _random_vectors(expansion, rng):
        ends = np.array([
            sub.slot_start + rng.uniform(0.0, sub.slot_length)
            for sub in expansion.sub_instances
        ])
        budgets = np.array([
            rng.uniform(-10.0, 0.5 * sub.instance.wcec)
            for sub in expansion.sub_instances
        ])
        return ends, budgets

    def test_scalar_energy_bitwise(self, processor):
        expansion = self._expansion(processor)
        compiled = CompiledEvaluation(expansion, processor)
        rng = np.random.default_rng(42)
        for _ in range(25):
            ends, budgets = self._random_vectors(expansion, rng)
            reference = evaluate_vectors(
                expansion, ends, budgets, processor, collect_details=False).energy
            assert compiled.energy(ends, budgets) == reference

    def test_batched_energies_bitwise(self, processor):
        expansion = self._expansion(processor)
        compiled = CompiledEvaluation(expansion, processor)
        rng = np.random.default_rng(43)
        n_subs = len(expansion.sub_instances)
        columns = 17
        end_matrix = np.empty((n_subs, columns))
        budget_matrix = np.empty((n_subs, columns))
        for column in range(columns):
            ends, budgets = self._random_vectors(expansion, rng)
            end_matrix[:, column] = ends
            budget_matrix[:, column] = budgets
        # Degenerate columns: end-times at the slot start (no available time)
        # and all-zero budgets.
        end_matrix[:, 0] = [sub.slot_start for sub in expansion.sub_instances]
        budget_matrix[:, 1] = 0.0
        batch = compiled.energies(end_matrix, budget_matrix)
        for column in range(columns):
            reference = evaluate_vectors(
                expansion, end_matrix[:, column], budget_matrix[:, column],
                processor, collect_details=False).energy
            assert batch[column] == reference

    def test_actual_cycles_mapping_respected(self, processor):
        expansion = self._expansion(processor)
        actual = {inst.key: inst.wcec for inst in expansion.instances}
        compiled = CompiledEvaluation(expansion, processor, actual)
        rng = np.random.default_rng(44)
        ends, budgets = self._random_vectors(expansion, rng)
        reference = evaluate_vectors(
            expansion, ends, budgets, processor, actual, collect_details=False).energy
        assert compiled.energy(ends, budgets) == reference

    def test_cmos_law_rejected(self, cmos):
        expansion = self._expansion(cmos)
        assert not CompiledEvaluation.supported(cmos)
        with pytest.raises(SchedulingError):
            CompiledEvaluation(expansion, cmos)

    def test_shape_mismatch_rejected(self, processor):
        expansion = self._expansion(processor)
        compiled = CompiledEvaluation(expansion, processor)
        with pytest.raises(SchedulingError):
            compiled.energies(np.zeros((2, 3)), np.zeros((2, 3)))
