"""Tests for the StaticSchedule data structure."""

import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import SchedulingError
from repro.offline.schedule import StaticSchedule


def make_schedule(taskset, processor, end_times=None, budgets=None, method="test"):
    expansion = expand_fully_preemptive(taskset)
    if end_times is None:
        # Pack everything at fmax: trivially feasible reference schedule.
        from repro.offline.initialization import worst_case_simulation_vectors
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
    return StaticSchedule.from_vectors(expansion, end_times, budgets, method=method), expansion


class TestConstruction:
    def test_from_vectors_round_trip(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        assert len(schedule) == len(expansion)
        assert schedule.method == "test"
        assert schedule.end_times() == [e.end_time for e in schedule]
        assert schedule.wc_budgets() == [e.wc_budget for e in schedule]

    def test_length_mismatch_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            StaticSchedule.from_vectors(expansion, [1.0], [1.0])

    def test_average_budgets_follow_sequential_fill(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        for instance in expansion.instances:
            entries = schedule.entries_for_instance(instance)
            total_avg = sum(e.avg_budget for e in entries)
            assert total_avg == pytest.approx(min(instance.acec, instance.wcec))
            for entry in entries:
                assert -1e-9 <= entry.avg_budget <= entry.wc_budget + 1e-9

    def test_entry_lookup(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        first = schedule[0]
        assert schedule.entry_by_key(first.key) is first
        with pytest.raises(KeyError):
            schedule.entry_by_key("nope")

    def test_describe_contains_every_entry(self, two_task_set, processor):
        schedule, _ = make_schedule(two_task_set, processor)
        text = schedule.describe()
        for entry in schedule:
            assert entry.key in text


class TestValidation:
    def test_feasible_schedule_passes(self, two_task_set, processor):
        schedule, _ = make_schedule(two_task_set, processor)
        schedule.validate(processor)

    def test_end_after_slot_rejected(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        end_times = schedule.end_times()
        end_times[0] = expansion.sub_instances[0].slot_end + 1.0
        bad = StaticSchedule.from_vectors(expansion, end_times, schedule.wc_budgets())
        with pytest.raises(SchedulingError):
            bad.validate(processor)

    def test_chain_violation_rejected(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        end_times = schedule.end_times()
        end_times[0] = 0.1  # not enough room for 3000 cycles at fmax=1000
        bad = StaticSchedule.from_vectors(expansion, end_times, schedule.wc_budgets())
        with pytest.raises(SchedulingError):
            bad.validate(processor)

    def test_budget_sum_violation_rejected(self, two_task_set, processor):
        schedule, expansion = make_schedule(two_task_set, processor)
        entries = list(schedule.entries)
        # Tamper with one budget directly (bypassing from_vectors normalisation).
        from dataclasses import replace
        entries[0] = replace(entries[0], wc_budget=entries[0].wc_budget + 500.0)
        bad = StaticSchedule(expansion=expansion, entries=entries)
        with pytest.raises(SchedulingError):
            bad.validate(processor)

    def test_planned_wc_speed(self, two_task_set, processor):
        schedule, _ = make_schedule(two_task_set, processor)
        entry = schedule[0]
        speed = entry.planned_wc_speed(0.0, processor)
        assert speed == pytest.approx(min(entry.wc_budget / entry.end_time, processor.fmax))
        # Degenerate window clamps to fmax.
        assert entry.planned_wc_speed(entry.end_time, processor) == processor.fmax
