"""Tests for the stochastic (probability-weighted) ACS variant."""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import SchedulingError
from repro.offline.nlp import ReducedNLP, SolverOptions
from repro.offline.stochastic import StochasticACSScheduler, sample_scenarios
from repro.offline.wcs import WCSScheduler
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import BimodalWorkload, FixedWorkload

FAST = SolverOptions(maxiter=60)


class TestSampleScenarios:
    def test_structure_and_bounds(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        scenarios = sample_scenarios(expansion, BimodalWorkload(), n_scenarios=5, seed=1)
        assert len(scenarios) == 5
        for weight, actual in scenarios:
            assert weight == 1.0
            assert set(actual) == {i.key for i in expansion.instances}
            for instance in expansion.instances:
                assert 0.0 <= actual[instance.key] <= instance.wcec + 1e-9

    def test_deterministic_with_seed(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        first = sample_scenarios(expansion, BimodalWorkload(), 3, seed=7)
        second = sample_scenarios(expansion, BimodalWorkload(), 3, seed=7)
        assert first == second

    def test_invalid_count_rejected(self, two_task_set):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            sample_scenarios(expansion, BimodalWorkload(), 0)


class TestScenarioObjective:
    def test_weighted_mean_of_single_scenario_matches_plain(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        acec_scenario = [(1.0, {i.key: i.acec for i in expansion.instances})]
        plain = ReducedNLP(expansion, processor, workload_mode="acec", options=FAST)
        weighted = ReducedNLP(expansion, processor, workload_mode="acec", options=FAST,
                              scenarios=acec_scenario)
        x = plain.pack(*plain.fallback_vectors())
        assert weighted.objective(x) == pytest.approx(plain.objective(x))

    def test_empty_scenarios_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            ReducedNLP(expansion, processor, scenarios=[])


class TestStochasticScheduler:
    def test_valid_schedule_and_worst_case_safe(self, two_task_set, processor):
        scheduler = StochasticACSScheduler(processor, workload=BimodalWorkload(burst_probability=0.1),
                                           n_scenarios=4, options=FAST)
        schedule = scheduler.schedule(two_task_set)
        schedule.validate(processor)
        assert schedule.method == "acs_stochastic"
        assert schedule.metadata["n_scenarios"] == 4
        result = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=2)).run(
            schedule, FixedWorkload(mode="wcec"))
        assert result.met_all_deadlines

    def test_beats_wcs_on_bimodal_workload(self, two_task_set, processor):
        """On the 'usually short, occasionally worst-case' workload from the paper's abstract,
        the stochastic variant saves energy over the WCS baseline at runtime."""
        workload = BimodalWorkload(burst_probability=0.1)
        stochastic = StochasticACSScheduler(processor, workload=workload, n_scenarios=6,
                                            options=FAST).schedule(two_task_set)
        wcs = WCSScheduler(processor, options=FAST).schedule(two_task_set)
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=50))
        stochastic_energy = simulator.run(stochastic, workload, np.random.default_rng(3)).mean_energy_per_hyperperiod
        wcs_energy = simulator.run(wcs, workload, np.random.default_rng(3)).mean_energy_per_hyperperiod
        assert stochastic_energy < wcs_energy
        # The objective it optimised is the expected energy over its own scenarios,
        # which must not exceed the WCS point's value (it keeps WCS as a candidate).
        assert stochastic.objective_value is not None
