"""Tests for the reduced NLP assembly (variable packing, constraints, repair)."""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import SchedulingError
from repro.offline.nlp import ReducedNLP, SolverOptions


class TestVariablePacking:
    def test_single_sub_instance_budgets_are_fixed(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        # Jobs A[0] and A[1] have one sub-instance each → fixed budgets; B[0] has two → 2 variables.
        assert nlp.n_variables == len(expansion) + 2

    def test_pack_unpack_round_trip(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        end_times = [float(i + 1) for i in range(len(expansion))]
        budgets = [100.0 * (i + 1) for i in range(len(expansion))]
        x = nlp.pack(end_times, budgets)
        unpacked_ends, unpacked_budgets = nlp.unpack(x)
        assert list(unpacked_ends) == pytest.approx(end_times)
        # Fixed budgets come back as the instance WCEC, free ones round-trip.
        for index, sub in enumerate(expansion.sub_instances):
            siblings = expansion.sub_instances_of(sub.instance)
            if len(siblings) == 1:
                assert unpacked_budgets[index] == pytest.approx(sub.instance.wcec)
            else:
                assert unpacked_budgets[index] == pytest.approx(budgets[index])

    def test_invalid_mode_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            ReducedNLP(expansion, processor, workload_mode="typical")


class TestConstraints:
    def test_bounds_match_slots(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        bounds = nlp.bounds()
        for index, sub in enumerate(expansion.sub_instances):
            assert bounds[index] == (sub.slot_start, sub.slot_end)

    def test_feasible_point_satisfies_constraints(self, two_task_set, processor):
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor, options=SolverOptions(chain_margin_fraction=0.0))
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        x = nlp.pack(end_times, budgets)
        for constraint in nlp.linear_constraints():
            values = np.asarray(constraint["fun"](x))
            if constraint["type"] == "ineq":
                assert (values >= -1e-6).all()
            else:
                assert np.abs(values).max() < 1e-6

    def test_constraint_jacobians_match_functions(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        rng = np.random.default_rng(0)
        x = rng.uniform(1.0, 10.0, size=nlp.n_variables)
        for constraint in nlp.linear_constraints():
            jacobian = np.asarray(constraint["jac"](x))
            base = np.asarray(constraint["fun"](x))
            step = 1e-6
            for column in range(nlp.n_variables):
                perturbed = x.copy()
                perturbed[column] += step
                numeric = (np.asarray(constraint["fun"](perturbed)) - base) / step
                assert numeric == pytest.approx(jacobian[:, column], abs=1e-4)


class TestObjectiveAndSolve:
    def test_objective_matches_evaluator(self, two_task_set, processor):
        from repro.offline.evaluation import evaluate_vectors
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(two_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        acec = {i.key: i.acec for i in expansion.instances}
        nlp = ReducedNLP(expansion, processor, workload_mode="acec")
        assert nlp.objective(nlp.pack(end_times, budgets)) == pytest.approx(
            evaluate_vectors(expansion, end_times, budgets, processor, acec).energy)

    def test_wcec_mode_objective(self, two_task_set, processor):
        from repro.offline.evaluation import evaluate_vectors
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(two_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        wcec = {i.key: i.wcec for i in expansion.instances}
        nlp = ReducedNLP(expansion, processor, workload_mode="wcec")
        assert nlp.objective(nlp.pack(end_times, budgets)) == pytest.approx(
            evaluate_vectors(expansion, end_times, budgets, processor, wcec).energy)

    def test_solve_improves_on_feasible_reference(self, two_task_set, processor):
        """The solved schedule must beat the guaranteed-feasible fmax-packed schedule.

        (The heuristic *initial guess* may be infeasible and therefore evaluate
        to an unattainably low energy, so it is not a valid reference point.)
        """
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor, workload_mode="acec")
        reference_objective = nlp.objective(nlp.pack(*nlp.fallback_vectors()))
        schedule = nlp.solve()
        assert schedule.objective_value <= reference_objective + 1e-6

    def test_solve_with_tiny_iteration_budget_still_feasible(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        nlp = ReducedNLP(expansion, processor, options=SolverOptions(maxiter=1))
        schedule = nlp.solve()
        schedule.validate(processor)


class TestRepair:
    def test_repair_normalises_budgets(self, two_task_set, processor):
        from repro.offline.initialization import worst_case_simulation_vectors
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        end_times, _ = worst_case_simulation_vectors(expansion, processor)
        # Budgets for B[0] sum to 12000 instead of its WCEC of 8000.
        budgets = []
        for sub in expansion.sub_instances:
            if sub.instance.key == "B[0]":
                budgets.append(10500.0 if sub.sub_index == 0 else 1500.0)
            else:
                budgets.append(sub.instance.wcec)
        repaired = nlp._repair(np.array(end_times), np.array(budgets))
        assert repaired is not None
        repaired_ends, repaired_budgets = repaired
        b_budgets = [b for sub, b in zip(expansion.sub_instances, repaired_budgets)
                     if sub.instance.key == "B[0]"]
        assert sum(b_budgets) == pytest.approx(8000.0)
        assert b_budgets[0] == pytest.approx(7000.0)
        assert all(b >= 0 for b in repaired_budgets)
        # The repaired schedule is feasible.
        from repro.offline.schedule import StaticSchedule
        StaticSchedule.from_vectors(expansion, repaired_ends, repaired_budgets).validate(processor)

    def test_repair_rejects_unfixable_end_times(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        nlp = ReducedNLP(expansion, processor)
        # Force all worst-case work of B into its first (short) slot end: impossible.
        end_times = []
        budgets = []
        for sub in expansion.sub_instances:
            end_times.append(sub.slot_end)
            if sub.instance.key == "B[0]":
                budgets.append(10000.0 if sub.sub_index == 0 else -2000.0)
            else:
                budgets.append(sub.instance.wcec)
        # After normalisation B[0].0 carries 8000+ cycles but only 10 ms of slot minus
        # the higher-priority 3 ms remain → infeasible at fmax=1000? (7 ms × 1000 = 7000 < 8000)
        repaired = nlp._repair(np.array(end_times), np.array(budgets))
        assert repaired is None


class TestVectorizedJacobian:
    """The batched gradient must replay scipy's finite differences bitwise."""

    @staticmethod
    def _bounds_arrays(nlp):
        bounds = nlp.bounds()
        return (np.array([low for low, _ in bounds]),
                np.array([high for _, high in bounds]))

    def test_objective_dispatch_bitwise(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        nlp = ReducedNLP(expansion, processor)
        lower, upper = self._bounds_arrays(nlp)
        rng = np.random.default_rng(5)
        for _ in range(20):
            x = lower + rng.uniform(0.0, 1.0, len(lower)) * (upper - lower)
            assert nlp.objective(x) == nlp.objective_reference(x)

    def test_jacobian_matches_scipy_bitwise(self, three_task_set, processor):
        from scipy.optimize._numdiff import approx_derivative

        expansion = expand_fully_preemptive(three_task_set)
        nlp = ReducedNLP(expansion, processor)
        lower, upper = self._bounds_arrays(nlp)
        rng = np.random.default_rng(6)
        points = [lower + rng.uniform(0.0, 1.0, len(lower)) * (upper - lower)
                  for _ in range(10)]
        points.append(lower.copy())   # on the lower bounds: backward steps
        points.append(upper.copy())   # on the upper bounds: sign flips
        for x in points:
            expected = approx_derivative(
                nlp.objective_reference, x, method="2-point",
                abs_step=nlp.options.finite_difference_step,
                bounds=(lower, upper),
            )
            assert np.array_equal(nlp.jacobian(x), expected)

    def test_solve_identical_with_and_without_jacobian(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        fast = ReducedNLP(expansion, processor,
                          options=SolverOptions(maxiter=60)).solve()
        slow = ReducedNLP(expansion, processor,
                          options=SolverOptions(maxiter=60,
                                                vectorized_jacobian=False)).solve()
        assert fast.end_times() == slow.end_times()
        assert fast.wc_budgets() == slow.wc_budgets()
        assert fast.objective_value == slow.objective_value
        assert fast.metadata["solver_iterations"] == slow.metadata["solver_iterations"]
        assert fast.metadata["solver_status"] == slow.metadata["solver_status"]

    def test_cmos_processor_falls_back_to_scipy(self, three_task_set, cmos):
        expansion = expand_fully_preemptive(three_task_set)
        nlp = ReducedNLP(expansion, cmos, options=SolverOptions(maxiter=25))
        assert nlp._compiled is None
        schedule = nlp.solve()
        schedule.validate(cmos)
