"""Tests for the constructive (worst-case simulation) schedule vectors."""

import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.analysis.response_time import breakdown_frequency
from repro.core.errors import SchedulingError
from repro.offline.initialization import (
    proportional_budget_vectors,
    worst_case_simulation_vectors,
)
from repro.offline.schedule import StaticSchedule


class TestWorstCaseSimulationVectors:
    def test_produces_valid_schedule_at_fmax(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        schedule = StaticSchedule.from_vectors(expansion, end_times, budgets, method="fmax")
        schedule.validate(processor)

    def test_budgets_sum_to_wcec(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        _, budgets = worst_case_simulation_vectors(expansion, processor)
        for instance in expansion.instances:
            indices = [s.order for s in expansion.sub_instances_of(instance)]
            assert sum(budgets[i] for i in indices) == pytest.approx(instance.wcec)

    def test_two_task_example_values(self, two_task_set, processor):
        """At fmax=1000: A[0] runs [0,3], B[0] runs [3,10] (7000 cycles) and [10+3,14] (1000),
        A[1] runs [10,13]."""
        expansion = expand_fully_preemptive(two_task_set)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor)
        by_key = {sub.key: (end_times[i], budgets[i]) for i, sub in enumerate(expansion.sub_instances)}
        assert by_key["A[0].0"] == (pytest.approx(3.0), pytest.approx(3000.0))
        assert by_key["B[0].0"] == (pytest.approx(10.0), pytest.approx(7000.0))
        assert by_key["A[1].0"] == (pytest.approx(13.0), pytest.approx(3000.0))
        assert by_key["B[0].1"] == (pytest.approx(14.0), pytest.approx(1000.0))

    def test_breakdown_frequency_also_feasible(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        frequency = breakdown_frequency(two_task_set, processor)
        end_times, budgets = worst_case_simulation_vectors(expansion, processor, frequency)
        schedule = StaticSchedule.from_vectors(expansion, end_times, budgets)
        schedule.validate(processor)

    def test_too_slow_frequency_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            worst_case_simulation_vectors(expansion, processor, 0.3 * processor.fmax)

    def test_nonpositive_frequency_rejected(self, two_task_set, processor):
        expansion = expand_fully_preemptive(two_task_set)
        with pytest.raises(SchedulingError):
            worst_case_simulation_vectors(expansion, processor, 0.0)


class TestProportionalBudgetVectors:
    def test_budgets_sum_to_wcec(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        _, budgets = proportional_budget_vectors(expansion, processor)
        for instance in expansion.instances:
            indices = [s.order for s in expansion.sub_instances_of(instance)]
            assert sum(budgets[i] for i in indices) == pytest.approx(instance.wcec)

    def test_end_times_within_slots_or_later_chain(self, three_task_set, processor):
        expansion = expand_fully_preemptive(three_task_set)
        end_times, budgets = proportional_budget_vectors(expansion, processor)
        for sub, end, budget in zip(expansion.sub_instances, end_times, budgets):
            assert end >= sub.slot_start + budget / processor.fmax - 1e-9
