"""Tests for the ASCII Gantt rendering."""

import pytest

from repro.offline.wcs import WCSScheduler
from repro.reporting.gantt import render_static_schedule, render_timeline, render_trace
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.runtime.trace import EventTrace
from repro.workloads.distributions import FixedWorkload
from repro.core.timeline import Timeline


class TestRenderStaticSchedule:
    def test_contains_every_task_and_axis(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        text = render_static_schedule(schedule, width=60)
        lines = text.splitlines()
        assert "A" in text and "B" in text
        assert "|" in text  # planned end-time markers
        assert "-" in text  # slots
        assert lines[0].startswith("static schedule 'wcs'")
        # All chart rows share the same width.
        row_lengths = {len(line) for line in lines[1:-1]}
        assert len(row_lengths) == 1

    def test_width_validation(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        with pytest.raises(ValueError):
            render_static_schedule(schedule, width=5)


class TestRenderTimeline:
    def test_renders_trace_with_speed_glyphs(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        simulator = DVSSimulator(processor,
                                 config=SimulationConfig(n_hyperperiods=1, record_timeline=True))
        result = simulator.run(schedule, FixedWorkload(mode="wcec"))
        text = render_timeline(result.timeline, processor, width=60)
        assert "A" in text and "B" in text
        assert any(glyph in text for glyph in "░▒▓█")

    def test_empty_timeline(self, processor):
        assert render_timeline(Timeline(), processor) == "(empty timeline)"

    def test_width_validation(self, processor):
        with pytest.raises(ValueError):
            render_timeline(Timeline(), processor, width=3)


class TestRenderTrace:
    def test_renders_from_the_event_stream(self, two_task_set, processor):
        """The chart is the timeline projection of the typed events — byte-equal
        to rendering the recorded timeline directly."""
        schedule = WCSScheduler(processor).schedule(two_task_set)
        simulator = DVSSimulator(
            processor,
            config=SimulationConfig(n_hyperperiods=1, trace=True, record_timeline=True))
        result = simulator.run(schedule, FixedWorkload(mode="wcec"))
        text = render_trace(result.trace, processor, width=60)
        assert text == render_timeline(result.timeline, processor, width=60)
        assert "A" in text and "B" in text
        assert any(glyph in text for glyph in "░▒▓█")

    def test_empty_trace(self, processor):
        assert render_trace(EventTrace(), processor) == "(empty timeline)"

    def test_width_validation(self, processor):
        with pytest.raises(ValueError):
            render_trace(EventTrace(), processor, width=3)
