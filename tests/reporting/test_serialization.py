"""Tests for JSON serialisation of task sets, schedules and results."""

import pytest

from repro.allocation.multicore import MulticoreProblem, plan_multicore
from repro.core.errors import ReproError
from repro.offline.acs import ACSScheduler
from repro.offline.evaluation import average_case_energy
from repro.reporting.serialization import (
    comparison_result_to_dict,
    load_json,
    multicore_plan_to_dict,
    multicore_result_to_dict,
    partition_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    simulation_result_to_dict,
    taskset_from_dict,
    taskset_to_dict,
    trace_from_dicts,
    trace_to_dicts,
)
from repro.runtime.multicore import MulticoreRunner
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import NormalWorkload


class TestTaskSetRoundTrip:
    def test_round_trip_preserves_everything(self, three_task_set):
        data = taskset_to_dict(three_task_set)
        rebuilt = taskset_from_dict(data)
        assert rebuilt.name == three_task_set.name
        assert len(rebuilt) == len(three_task_set)
        for task in three_task_set:
            loaded = rebuilt[task.name]
            assert loaded.period == task.period
            assert loaded.wcec == task.wcec
            assert loaded.acec == task.acec
            assert loaded.bcec == task.bcec
            assert rebuilt.priority_of(task.name) == three_task_set.priority_of(task.name)

    def test_missing_field_rejected(self):
        with pytest.raises(ReproError):
            taskset_from_dict({"tasks": [{"name": "a", "period": 10}]})


class TestScheduleRoundTrip:
    def test_round_trip_preserves_schedule(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        data = schedule_to_dict(schedule)
        rebuilt = schedule_from_dict(data)
        rebuilt.validate(processor)
        assert rebuilt.end_times() == pytest.approx(schedule.end_times())
        assert rebuilt.wc_budgets() == pytest.approx(schedule.wc_budgets())
        assert average_case_energy(rebuilt, processor) == pytest.approx(
            average_case_energy(schedule, processor))

    def test_incomplete_entries_rejected(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        data = schedule_to_dict(schedule)
        data["entries"] = data["entries"][:-1]
        with pytest.raises(ReproError):
            schedule_from_dict(data)

    def test_json_file_round_trip(self, two_task_set, processor, tmp_path):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        path = save_json(schedule_to_dict(schedule), tmp_path / "schedule.json")
        rebuilt = schedule_from_dict(load_json(path))
        rebuilt.validate(processor)
        assert rebuilt.method == schedule.method


class TestSimulationResultSerialisation:
    def test_contains_aggregates(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        result = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=3, seed=1)).run(
            schedule, NormalWorkload())
        data = simulation_result_to_dict(result)
        assert data["n_hyperperiods"] == 3
        assert data["total_energy"] == pytest.approx(result.total_energy)
        assert data["deadline_misses"] == []
        assert set(data["energy_by_task"]) == {"A", "B"}
        assert "events" not in data  # tracing was off

    def test_trace_embeds_as_event_rows(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        config = SimulationConfig(n_hyperperiods=2, seed=1, trace=True)
        result = DVSSimulator(processor, config=config).run(schedule, NormalWorkload())
        data = simulation_result_to_dict(result)
        assert data["events"] == trace_to_dicts(result.trace)
        assert data["events"][0]["kind"] == "HyperperiodReset"


class TestTraceRoundTrip:
    @pytest.fixture()
    def trace(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        config = SimulationConfig(n_hyperperiods=2, seed=7, trace=True)
        result = DVSSimulator(processor, config=config).run(schedule, NormalWorkload())
        return result.trace

    def test_round_trip_is_exact(self, trace, tmp_path):
        rows = trace_to_dicts(trace)
        assert trace_from_dicts(rows) == trace
        # Through an actual JSON file: float repr round-trips bitwise.
        path = save_json({"events": rows}, tmp_path / "trace.json")
        assert trace_from_dicts(load_json(path)["events"]) == trace

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown trace event kind"):
            trace_from_dicts([{"kind": "Teleport", "time": 0.0}])

    def test_malformed_fields_rejected(self):
        with pytest.raises(ReproError, match="malformed JobRelease"):
            trace_from_dicts([{"kind": "JobRelease", "time": 0.0}])

    def test_comparison_result_carries_events_per_method(self, two_task_set, processor):
        from repro.experiments.harness import ComparisonConfig, compare_schedulers

        result = compare_schedulers(
            two_task_set, processor,
            config=ComparisonConfig(n_hyperperiods=2, seed=3, trace=True))
        data = comparison_result_to_dict(result)
        for method, outcome in result.outcomes.items():
            assert data["methods"][method]["events"] == trace_to_dicts(
                outcome.simulation.trace)

    def test_comparison_result_omits_events_when_off(self, two_task_set, processor):
        from repro.experiments.harness import ComparisonConfig, compare_schedulers

        result = compare_schedulers(
            two_task_set, processor, config=ComparisonConfig(n_hyperperiods=2, seed=3))
        data = comparison_result_to_dict(result)
        for method in result.outcomes:
            assert "events" not in data["methods"][method]


class TestMulticoreSerialisation:
    @pytest.fixture(scope="class")
    def plan(self, request):
        from repro.power.presets import ideal_processor

        processor = ideal_processor(fmax=1000.0)
        from repro.core.task import Task
        from repro.core.taskset import TaskSet

        taskset = TaskSet([
            Task("a", period=10, wcec=2000, acec=1000, bcec=400),
            Task("b", period=20, wcec=4000, acec=2000, bcec=800),
            Task("c", period=20, wcec=4000, acec=2000, bcec=800),
        ], name="serialise-me")
        problem = MulticoreProblem(taskset, processor, 2, partitioner="wfd")
        return plan_multicore(problem), processor

    def test_partition_dict(self, plan):
        multicore_plan, _processor = plan
        data = partition_to_dict(multicore_plan.partition)
        assert data["partitioner"] == "wfd"
        assert data["n_cores"] == 2
        assert sorted(data["assignment"]) == ["a", "b", "c"]
        placed = [name for names in data["cores"] if names for name in names]
        assert sorted(placed) == ["a", "b", "c"]

    def test_plan_dict_schedules_round_trip(self, plan):
        multicore_plan, processor = plan
        data = multicore_plan_to_dict(multicore_plan)
        assert data["method"] == "acs"
        assert len(data["schedules"]) == 2
        for core, schedule_data in enumerate(data["schedules"]):
            if schedule_data is None:
                assert multicore_plan.schedules[core] is None
                continue
            rebuilt = schedule_from_dict(schedule_data)
            rebuilt.validate(processor)
            assert rebuilt.end_times() == pytest.approx(
                multicore_plan.schedules[core].end_times())

    def test_multicore_result_dict(self, plan, tmp_path):
        multicore_plan, processor = plan
        result = MulticoreRunner(
            processor, policy="greedy",
            config=SimulationConfig(n_hyperperiods=3),
        ).run(multicore_plan, seed=11)
        data = multicore_result_to_dict(result)
        assert data["n_cores"] == 2
        assert data["total_energy"] == pytest.approx(result.total_energy)
        assert data["mean_energy_per_hyperperiod"] == pytest.approx(
            result.mean_energy_per_hyperperiod)
        assert len(data["cores"]) == 2
        assert data["core_slacks"] == pytest.approx(
            [1.0 - u for u in data["core_utilizations"]])
        # It must be plain JSON, file round-trippable.
        path = save_json(data, tmp_path / "multicore.json")
        assert load_json(path)["partitioner"] == "wfd"
