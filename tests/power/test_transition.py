"""Tests for the voltage-transition overhead model."""

import pytest

from repro.core.errors import InvalidProcessorError
from repro.power.transition import TransitionModel


class TestTransitionModel:
    def test_ideal_is_free(self):
        model = TransitionModel.ideal()
        assert model.is_free
        assert model.transition_time(1.0, 3.0) == 0.0
        assert model.transition_energy(1.0, 3.0) == 0.0

    def test_realistic_is_not_free(self):
        model = TransitionModel.realistic()
        assert not model.is_free
        assert model.transition_time(1.0, 3.0) > 0.0
        assert model.transition_energy(1.0, 3.0) > 0.0

    def test_no_cost_when_voltage_unchanged(self):
        model = TransitionModel.realistic()
        assert model.transition_time(2.0, 2.0) == 0.0
        assert model.transition_energy(2.0, 2.0) == 0.0

    def test_time_scales_with_voltage_difference(self):
        model = TransitionModel(slew_rate=10.0)
        assert model.transition_time(1.0, 2.0) == pytest.approx(0.1)
        assert model.transition_time(2.0, 1.0) == pytest.approx(0.1)
        assert model.transition_time(1.0, 3.0) == pytest.approx(0.2)

    def test_min_time_floor(self):
        model = TransitionModel(slew_rate=1000.0, min_time=0.05)
        assert model.transition_time(1.0, 1.001) == pytest.approx(0.05)

    def test_energy_formula(self):
        model = TransitionModel(cdd=2.0, efficiency_loss=0.5)
        assert model.transition_energy(1.0, 3.0) == pytest.approx(0.5 * 2.0 * (9 - 1))

    @pytest.mark.parametrize("kwargs", [
        dict(slew_rate=0.0),
        dict(min_time=-1.0),
        dict(cdd=-0.1),
        dict(efficiency_loss=1.5),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidProcessorError):
            TransitionModel(**kwargs)
