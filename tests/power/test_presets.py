"""Tests for the processor presets."""

import pytest

from repro.power.presets import (
    cmos_processor,
    crusoe_like_processor,
    ideal_processor,
    normalized_processor,
    xscale_like_processor,
)


def test_ideal_processor_defaults():
    processor = ideal_processor()
    assert processor.law == "linear"
    assert processor.vmax == 5.0
    assert processor.frequency(processor.vmax) == pytest.approx(processor.fmax)


def test_cmos_processor_defaults():
    processor = cmos_processor()
    assert processor.law == "cmos"
    assert processor.frequency(processor.vmax) == pytest.approx(processor.fmax)
    assert processor.vth < processor.vmin


def test_normalized_processor_unit_scale():
    processor = normalized_processor()
    assert processor.vmax == 1.0
    assert processor.fmax == 1.0
    assert processor.frequency(1.0) == pytest.approx(1.0)


@pytest.mark.parametrize("factory", [crusoe_like_processor, xscale_like_processor])
def test_discrete_presets_levels_within_range(factory):
    processor, levels = factory()
    assert levels.vmin >= processor.vmin - 1e-12
    assert levels.vmax <= processor.vmax + 1e-12
    assert len(levels) >= 3
    # Levels must be usable operating points.
    for voltage in levels:
        assert processor.frequency(voltage) > 0
