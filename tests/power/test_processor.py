"""Unit and property-based tests for the ProcessorModel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidProcessorError
from repro.power.processor import ProcessorModel
from repro.power.presets import cmos_processor, ideal_processor


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        dict(vmax=0.0),
        dict(vmin=0.0),
        dict(vmin=5.0, vmax=5.0),
        dict(vmin=6.0, vmax=5.0),
        dict(fmax=0.0),
        dict(ceff=0.0),
        dict(law="quantum"),
        dict(law="cmos", alpha=3.0),
        dict(law="cmos", vth=-0.1),
        dict(law="cmos", vth=1.0, vmin=0.9),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        defaults = dict(vmax=5.0, vmin=0.5, fmax=1.0)
        defaults.update(kwargs)
        with pytest.raises(InvalidProcessorError):
            ProcessorModel(**defaults)

    def test_describe_mentions_law(self):
        assert "linear" in ideal_processor().describe()
        assert "cmos" in cmos_processor().describe()


class TestLinearLaw:
    def test_frequency_proportional_to_voltage(self, processor):
        assert processor.frequency(5.0) == pytest.approx(1000.0)
        assert processor.frequency(2.5) == pytest.approx(500.0)
        assert processor.cycle_time(5.0) == pytest.approx(1e-3)

    def test_voltage_for_frequency_inverse(self, processor):
        assert processor.voltage_for_frequency(500.0) == pytest.approx(2.5)

    def test_voltage_clipping(self, processor):
        assert processor.voltage_for_frequency(2000.0) == processor.vmax
        assert processor.voltage_for_frequency(1.0) == processor.vmin
        assert processor.voltage_for_frequency(0.0) == processor.vmin

    def test_fmin(self, processor):
        assert processor.fmin == pytest.approx(processor.fmax * processor.vmin / processor.vmax)


class TestCmosLaw:
    def test_calibrated_at_vmax(self, cmos):
        assert cmos.frequency(cmos.vmax) == pytest.approx(cmos.fmax)

    def test_frequency_monotone_in_voltage(self, cmos):
        voltages = [1.0, 1.5, 2.0, 2.5, 3.0, 3.3]
        frequencies = [cmos.frequency(v) for v in voltages]
        assert frequencies == sorted(frequencies)

    def test_voltage_inversion_round_trip_alpha2(self, cmos):
        for fraction in (0.2, 0.5, 0.8, 1.0):
            frequency = cmos.fmin + fraction * (cmos.fmax - cmos.fmin)
            voltage = cmos.voltage_for_frequency(frequency)
            assert cmos.frequency(voltage) == pytest.approx(frequency, rel=1e-6)

    def test_voltage_inversion_alpha1(self):
        proc = ProcessorModel(vmax=3.3, vmin=1.0, fmax=100.0, vth=0.8, alpha=1.0, law="cmos")
        frequency = 0.6 * proc.fmax
        voltage = proc.voltage_for_frequency(frequency)
        assert proc.frequency(voltage) == pytest.approx(frequency, rel=1e-6)

    def test_voltage_inversion_fractional_alpha_bisection(self):
        proc = ProcessorModel(vmax=3.3, vmin=1.0, fmax=100.0, vth=0.8, alpha=1.5, law="cmos")
        frequency = 0.7 * proc.fmax
        voltage = proc.voltage_for_frequency(frequency)
        assert proc.frequency(voltage) == pytest.approx(frequency, rel=1e-5)


class TestEnergy:
    def test_energy_per_cycle(self, processor):
        assert processor.energy_per_cycle(2.0) == pytest.approx(4.0)
        assert processor.energy_per_cycle(2.0, ceff=0.5) == pytest.approx(2.0)

    def test_energy_scales_with_cycles(self, processor):
        assert processor.energy(100, 2.0) == pytest.approx(400.0)
        with pytest.raises(InvalidProcessorError):
            processor.energy(-1, 2.0)

    def test_power(self, processor):
        assert processor.power(5.0) == pytest.approx(25.0 * 1000.0)

    def test_energy_for_workload_in_time_picks_lowest_voltage(self, processor):
        # 1000 cycles in 2 ms → 500 cycles/ms → 2.5 V → 1000 · 2.5² = 6250.
        assert processor.energy_for_workload_in_time(1000, 2.0) == pytest.approx(6250.0)
        assert processor.energy_for_workload_in_time(0.0, 2.0) == 0.0
        with pytest.raises(InvalidProcessorError):
            processor.energy_for_workload_in_time(1000, 0.0)

    def test_quadratic_energy_voltage_tradeoff(self, processor):
        """Halving the speed (doubling the time) quarters the energy under the linear law."""
        fast = processor.energy_for_workload_in_time(1000, 1.0)
        slow = processor.energy_for_workload_in_time(1000, 2.0)
        assert slow == pytest.approx(fast / 4.0)

    def test_invalid_voltage_rejected(self, processor):
        with pytest.raises(InvalidProcessorError):
            processor.energy_per_cycle(0.0)
        with pytest.raises(InvalidProcessorError):
            processor.frequency(-1.0)


class TestHelpers:
    def test_clipping(self, processor):
        assert processor.clip_frequency(1e9) == processor.fmax
        assert processor.clip_frequency(0.0) == processor.fmin
        assert processor.clip_voltage(10.0) == processor.vmax
        assert processor.clip_voltage(0.1) == processor.vmin

    def test_capacity_conversions(self, processor):
        assert processor.max_cycles_in(2.0) == pytest.approx(2000.0)
        assert processor.min_time_for(500.0) == pytest.approx(0.5)
        with pytest.raises(InvalidProcessorError):
            processor.max_cycles_in(-1.0)
        with pytest.raises(InvalidProcessorError):
            processor.min_time_for(-1.0)


class TestPropertyBased:
    @given(fraction=st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=200, deadline=None)
    def test_linear_round_trip_within_range(self, fraction):
        processor = ideal_processor(fmax=1000.0)
        frequency = fraction * processor.fmax
        voltage = processor.voltage_for_frequency(frequency)
        assert processor.vmin <= voltage <= processor.vmax
        # The chosen voltage always sustains the requested frequency (up to clipping at fmax).
        assert processor.frequency(voltage) >= min(frequency, processor.fmax) - 1e-9

    @given(fraction=st.floats(min_value=0.0, max_value=1.2),
           alpha=st.sampled_from([1.0, 1.5, 2.0]))
    @settings(max_examples=100, deadline=None)
    def test_cmos_round_trip_within_range(self, fraction, alpha):
        processor = ProcessorModel(vmax=3.3, vmin=1.0, fmax=500.0, vth=0.8, alpha=alpha, law="cmos")
        frequency = fraction * processor.fmax
        voltage = processor.voltage_for_frequency(frequency)
        assert processor.vmin <= voltage <= processor.vmax
        assert processor.frequency(voltage) >= min(frequency, processor.fmax) - 1e-6 * processor.fmax

    @given(cycles=st.floats(min_value=1.0, max_value=1e6),
           time_short=st.floats(min_value=0.1, max_value=100.0),
           stretch=st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_more_time_never_costs_more_energy(self, cycles, time_short, stretch):
        """Energy is non-increasing in the available time (convexity of the energy law)."""
        processor = ideal_processor(fmax=1000.0)
        tight = processor.energy_for_workload_in_time(cycles, time_short)
        relaxed = processor.energy_for_workload_in_time(cycles, time_short * stretch)
        assert relaxed <= tight + 1e-9 * max(1.0, tight)
