"""Tests for discrete voltage levels, quantisation and the two-level split."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidProcessorError
from repro.power.presets import ideal_processor
from repro.power.voltage import VoltageLevels, split_two_level


class TestVoltageLevels:
    def test_deduplicated_and_sorted(self):
        levels = VoltageLevels([3.0, 1.0, 2.0, 2.0])
        assert list(levels) == [1.0, 2.0, 3.0]
        assert levels.vmin == 1.0
        assert levels.vmax == 3.0
        assert len(levels) == 3

    def test_empty_or_nonpositive_rejected(self):
        with pytest.raises(InvalidProcessorError):
            VoltageLevels([])
        with pytest.raises(InvalidProcessorError):
            VoltageLevels([0.0, 1.0])

    def test_ceiling_floor_nearest(self):
        levels = VoltageLevels([1.0, 2.0, 3.0])
        assert levels.ceiling(1.5) == 2.0
        assert levels.ceiling(2.0) == 2.0
        assert levels.ceiling(5.0) == 3.0
        assert levels.floor(1.5) == 1.0
        assert levels.floor(0.5) == 1.0
        assert levels.nearest(1.4) == 1.0
        assert levels.nearest(1.6) == 2.0
        assert levels.nearest(1.5) == 2.0  # ties upward

    def test_quantize_policies(self):
        levels = VoltageLevels([1.0, 2.0])
        assert levels.quantize(1.2, "ceiling") == 2.0
        assert levels.quantize(1.2, "floor") == 1.0
        assert levels.quantize(1.2, "nearest") == 1.0
        with pytest.raises(InvalidProcessorError):
            levels.quantize(1.2, "random")

    def test_bracket(self):
        levels = VoltageLevels([1.0, 2.0, 3.0])
        assert levels.bracket(2.5) == (2.0, 3.0)
        assert levels.bracket(0.5) == (1.0, 1.0)

    def test_uniform_constructor(self):
        levels = VoltageLevels.uniform(1.0, 3.0, 5)
        assert list(levels) == pytest.approx([1.0, 1.5, 2.0, 2.5, 3.0])
        assert list(VoltageLevels.uniform(1.0, 3.0, 1)) == [3.0]
        with pytest.raises(InvalidProcessorError):
            VoltageLevels.uniform(1.0, 3.0, 0)

    @given(request=st.floats(min_value=0.5, max_value=6.0))
    @settings(max_examples=200, deadline=None)
    def test_property_ceiling_never_below_request_inside_range(self, request):
        levels = VoltageLevels([1.0, 1.5, 2.5, 4.0, 5.0])
        ceiling = levels.ceiling(request)
        if request <= levels.vmax:
            assert ceiling >= request - 1e-9
        assert ceiling in set(levels)


class TestSplitTwoLevel:
    def test_exact_level_uses_single_pair(self):
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([1.0, 2.5, 5.0])
        # 500 cycles/ms → exactly 2.5 V.
        pairs = split_two_level(processor, levels, cycles=1000.0, available_time=2.0)
        assert len(pairs) == 1
        assert pairs[0][0] == pytest.approx(2.5)
        assert pairs[0][1] == pytest.approx(1000.0)

    def test_split_meets_cycles_and_time(self):
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([1.0, 5.0])
        cycles, available = 1200.0, 2.0
        pairs = split_two_level(processor, levels, cycles, available)
        total_cycles = sum(c for _, c in pairs)
        total_time = sum(c / processor.frequency(v) for v, c in pairs)
        assert total_cycles == pytest.approx(cycles)
        assert total_time == pytest.approx(available, rel=1e-9)

    def test_lower_level_sufficient(self):
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([2.0, 5.0])
        # 100 cycles in 10 ms only needs 10 cycles/ms << f(2.0 V) = 400.
        pairs = split_two_level(processor, levels, cycles=100.0, available_time=10.0)
        assert pairs == [(2.0, 100.0)]

    def test_zero_cycles(self):
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([1.0, 5.0])
        assert split_two_level(processor, levels, 0.0, 1.0) == []

    def test_invalid_time_rejected(self):
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([1.0, 5.0])
        with pytest.raises(InvalidProcessorError):
            split_two_level(processor, levels, 10.0, 0.0)

    def test_split_energy_no_worse_than_ceiling(self):
        """The Ishihara–Yasuura split never costs more than rounding the voltage up."""
        processor = ideal_processor(fmax=1000.0)
        levels = VoltageLevels([1.0, 2.0, 3.0, 4.0, 5.0])
        cycles, available = 1700.0, 3.0
        pairs = split_two_level(processor, levels, cycles, available)
        split_energy = sum(processor.energy(c, v) for v, c in pairs)
        ideal_voltage = processor.voltage_for_frequency(cycles / available)
        ceiling_energy = processor.energy(cycles, levels.ceiling(ideal_voltage))
        assert split_energy <= ceiling_energy + 1e-9
