"""Serial/parallel equivalence of the batched harness and the seed derivation."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.experiments.harness import (
    ComparisonConfig,
    ComparisonJob,
    make_schedulers,
    run_comparisons,
    scheduler_names,
)
from repro.experiments.seeding import derive_rng, derive_seed
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.reporting.serialization import sweep_result_to_dict

#: Divisor-friendly pool: hyperperiod ≤ 20, so the NLPs stay tiny and fast.
_FAST_PERIODS = (10.0, 20.0)


def _fast_sweep_config(jobs: int) -> SweepConfig:
    return SweepConfig(n_tasksets=3, n_tasks=2, n_hyperperiods=4, seed=42,
                       jobs=jobs, periods=_FAST_PERIODS)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, 1, 2, 3) == derive_seed(7, 1, 2, 3)

    def test_path_sensitive(self):
        seeds = {derive_seed(7), derive_seed(7, 0), derive_seed(7, 1),
                 derive_seed(7, 0, 0), derive_seed(7, 0, 1), derive_seed(8, 0, 0)}
        assert len(seeds) == 6

    def test_order_sensitive(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_fits_in_31_bits(self):
        for path in [(0,), (1, 2), (3, 4, 5)]:
            assert 0 <= derive_seed(1234, *path) < 2**31

    def test_derive_rng_reproducible(self):
        a = derive_rng(9, 1).integers(0, 1 << 30, size=4)
        b = derive_rng(9, 1).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_config_with_derived_seed(self):
        config = ComparisonConfig(seed=99)
        derived = config.with_derived_seed(0, 3)
        assert derived.seed == derive_seed(99, 0, 3)
        assert config.seed == 99  # original untouched
        assert ComparisonConfig(seed=None).with_derived_seed(1).seed is None


class TestSchedulerRegistry:
    def test_known_names(self):
        assert {"wcs", "acs"}.issubset(scheduler_names())

    def test_make_schedulers(self, processor):
        schedulers = make_schedulers(["wcs", "acs"], processor)
        assert list(schedulers) == ["wcs", "acs"]

    def test_unknown_rejected(self, processor):
        with pytest.raises(ExperimentError):
            make_schedulers(["wcs", "oracle"], processor)


class TestComparisonJob:
    def test_needs_exactly_one_taskset_source(self, two_task_set, processor):
        with pytest.raises(ExperimentError):
            ComparisonJob(processor=processor, config=ComparisonConfig())
        with pytest.raises(ExperimentError):
            ComparisonJob(processor=processor, config=ComparisonConfig(),
                          taskset=two_task_set,
                          taskset_config=object())  # both given

    def test_explicit_taskset_job(self, two_task_set, processor):
        job = ComparisonJob(processor=processor,
                            config=ComparisonConfig(n_hyperperiods=3, seed=1),
                            taskset=two_task_set)
        (result,) = run_comparisons([job])
        assert set(result.methods()) == {"wcs", "acs"}

    def test_random_job_requires_seed(self, processor):
        from repro.workloads.random_tasksets import RandomTaskSetConfig
        with pytest.raises(ExperimentError):
            ComparisonJob(processor=processor, config=ComparisonConfig(),
                          taskset_config=RandomTaskSetConfig())

    def test_rejects_nonpositive_jobs(self, two_task_set, processor):
        job = ComparisonJob(processor=processor, config=ComparisonConfig(),
                            taskset=two_task_set)
        with pytest.raises(ExperimentError):
            run_comparisons([job], n_jobs=0)


class TestSerialParallelEquivalence:
    def test_sweep_results_bitwise_identical(self):
        serial = run_sweep(_fast_sweep_config(jobs=1))
        parallel = run_sweep(_fast_sweep_config(jobs=2))
        for left, right in zip(serial.results, parallel.results):
            assert left.taskset_name == right.taskset_name
            for method in ("wcs", "acs"):
                # Bitwise: exact float equality, not approx.
                assert left.energy(method) == right.energy(method)
                assert (left.outcomes[method].simulation.energy_per_hyperperiod
                        == right.outcomes[method].simulation.energy_per_hyperperiod)
        assert serial.to_markdown() == parallel.to_markdown()

    def test_sweep_json_identical_up_to_wall_clock(self):
        serial = sweep_result_to_dict(run_sweep(_fast_sweep_config(jobs=1)))
        parallel = sweep_result_to_dict(run_sweep(_fast_sweep_config(jobs=2)))
        serial.pop("elapsed_seconds")
        parallel.pop("elapsed_seconds")
        config_serial = serial["config"].pop("jobs")
        config_parallel = parallel["config"].pop("jobs")
        assert (config_serial, config_parallel) == (1, 2)
        assert serial == parallel

    def test_rerun_is_reproducible(self):
        first = run_sweep(_fast_sweep_config(jobs=1))
        second = run_sweep(_fast_sweep_config(jobs=1))
        assert first.to_markdown() == second.to_markdown()


class TestFigureParallelEquivalence:
    def test_figure6a_jobs_equivalent(self):
        from repro.experiments.figure6a import Figure6aConfig, run_figure6a
        base = dict(task_counts=(2,), bcec_wcec_ratios=(0.1, 0.5),
                    tasksets_per_point=2, hyperperiods_per_taskset=3, seed=11,
                    periods=_FAST_PERIODS)
        serial = run_figure6a(Figure6aConfig(jobs=1, **base))
        parallel = run_figure6a(Figure6aConfig(jobs=2, **base))
        for left, right in zip(serial.points, parallel.points):
            assert left.mean_improvement_percent == right.mean_improvement_percent
            assert left.mean_wcs_energy == right.mean_wcs_energy
            assert left.mean_acs_energy == right.mean_acs_energy
