"""Tests for the motivational example (Table 1 / Figures 1-2)."""

import pytest

from repro.experiments.motivation import (
    MotivationConfig,
    motivation_taskset,
    run_motivation,
)


class TestMotivationTaskset:
    def test_three_equal_tasks_in_a_frame(self):
        taskset = motivation_taskset()
        assert len(taskset) == 3
        for task in taskset:
            assert task.period == pytest.approx(20.0)
            assert task.deadline == pytest.approx(20.0)


class TestRunMotivation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_motivation()

    def test_wcs_end_times_match_figure1(self, result):
        """The WCEC-optimal schedule splits the 20 ms frame evenly: ends at 6.7/13.3/20 ms."""
        assert result.wcs_end_times == pytest.approx([20 / 3, 40 / 3, 20.0], rel=1e-2)

    def test_acs_extends_early_end_times(self, result):
        """ACS pushes the early tasks' end-times later than WCS to leave room for slack reuse."""
        assert result.acs_end_times[0] > result.wcs_end_times[0] + 0.5
        assert result.acs_end_times[-1] == pytest.approx(20.0, rel=1e-2)

    def test_acs_end_times_match_figure2(self, result):
        """With the reconstructed parameters the ACS end-times land on the paper's 10/15/20 ms."""
        assert result.acs_end_times == pytest.approx([10.0, 15.0, 20.0], abs=0.3)

    def test_worst_case_penalty_matches_paper(self, result):
        """The paper reports a ≈33 % worst-case penalty for the Figure 2 end-times."""
        assert result.penalty_worst_case_percent == pytest.approx(33.3, abs=5.0)

    def test_average_case_improvement_positive(self, result):
        """Figure 2 vs Figure 1(b): the paper reports ≈24 %; require a double-digit improvement."""
        assert result.improvement_average_case_percent > 10.0

    def test_worst_case_penalty_nonnegative(self, result):
        """The paper reports a ≈33 % worst-case penalty; the sign of the trade-off must hold."""
        assert result.penalty_worst_case_percent >= -1e-6

    def test_energy_ordering(self, result):
        assert result.acs_average_case_energy < result.wcs_average_case_energy
        assert result.wcs_average_case_energy < result.wcs_worst_case_energy
        assert result.acs_worst_case_energy >= result.wcs_worst_case_energy - 1e-6

    def test_markdown_table_renders(self, result):
        text = result.to_markdown()
        assert "Fig. 1(a)" in text and "Fig. 2" in text

    def test_custom_config(self):
        config = MotivationConfig(wcec=4000.0, acec=1600.0, bcec=800.0)
        result = run_motivation(config)
        assert result.improvement_average_case_percent > 0.0
