"""Smoke tests for the Figure 6(a)/6(b) harnesses (tiny configurations)."""

import pytest

from repro.experiments.figure6a import Figure6aConfig, run_figure6a
from repro.experiments.figure6b import Figure6bConfig, run_figure6b


class TestFigure6a:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure6aConfig(
            task_counts=(2, 3),
            bcec_wcec_ratios=(0.1, 0.9),
            tasksets_per_point=1,
            hyperperiods_per_taskset=5,
            seed=7,
        )
        return run_figure6a(config)

    def test_all_points_present(self, result):
        assert len(result.points) == 4
        assert result.point(2, 0.1).n_tasks == 2
        with pytest.raises(KeyError):
            result.point(10, 0.1)

    def test_no_deadline_misses(self, result):
        assert all(p.deadline_misses == 0 for p in result.points)

    def test_low_ratio_beats_high_ratio(self, result):
        """More workload variation → more opportunity for ACS (the figure's main trend)."""
        for n_tasks in (2, 3):
            low = result.point(n_tasks, 0.1).mean_improvement_percent
            high = result.point(n_tasks, 0.9).mean_improvement_percent
            assert low >= high - 2.0  # allow small sampling noise

    def test_series_and_markdown(self, result):
        series = result.series(0.1)
        assert [n for n, _ in series] == [2, 3]
        table = result.to_markdown()
        assert "ratio 0.1" in table and "ratio 0.9" in table


class TestFigure6b:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure6bConfig(
            bcec_wcec_ratios=(0.1, 0.9),
            hyperperiods_per_point=3,
            gap_tasks=5,
            seed=7,
        )
        return run_figure6b(config)

    def test_both_applications_present(self, result):
        assert {p.application for p in result.points} == {"cnc", "gap"}
        assert len(result.points) == 4

    def test_no_deadline_misses(self, result):
        assert all(p.deadline_misses == 0 for p in result.points)

    def test_improvement_positive_at_low_ratio(self, result):
        assert result.point("cnc", 0.1).improvement_percent > 5.0
        assert result.point("gap", 0.1).improvement_percent > 0.0

    def test_series_and_markdown(self, result):
        series = result.series("cnc")
        assert [r for r, _ in series] == [0.1, 0.9]
        table = result.to_markdown()
        assert "CNC" in table and "GAP" in table

    def test_unknown_application_rejected(self):
        config = Figure6bConfig(applications=("cnc", "flight-sim"))
        with pytest.raises(KeyError):
            run_figure6b(config)
