"""Harness-level equivalence: batched planning never changes any result.

``ComparisonConfig(batched_planning=True)`` (the default) routes a
comparison's offline solves through the batched planner and the solve memo;
``False`` pins the historical per-scheduler sequential path.  Both must
produce bitwise-identical :class:`ComparisonResult`s — schedules *and* the
simulations run on top of them — across the full online matrix (all four
DVS policies x all four workload models), with the scenario-weighted
stochastic scheduler in the mix, and under a discrete-voltage simulation
config.
"""

from dataclasses import replace

import pytest

from repro.experiments.harness import (
    ComparisonConfig,
    compare_schedulers,
    make_schedulers,
)
from repro.offline.stochastic import StochasticACSScheduler
from repro.power.voltage import VoltageLevels
from repro.runtime.policies import available_policies, get_policy
from repro.runtime.simulator import SimulationConfig
from repro.workloads.distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
)

WORKLOADS = [
    NormalWorkload(),
    UniformWorkload(),
    FixedWorkload(mode="acec"),
    BimodalWorkload(burst_probability=0.3),
]


def fingerprint(result):
    """Every float of every outcome: schedule vectors plus simulation."""
    return {
        name: (
            outcome.schedule.method,
            tuple(outcome.schedule.end_times()),
            tuple(outcome.schedule.wc_budgets()),
            outcome.schedule.objective_value,
            outcome.simulation.total_energy,
            tuple(outcome.simulation.energy_per_hyperperiod),
            tuple(sorted(outcome.simulation.energy_by_task.items())),
            len(outcome.simulation.deadline_misses),
        )
        for name, outcome in result.outcomes.items()
    }


def run_both_plans(taskset, processor, schedulers, **config_kwargs):
    results = []
    for batched_planning in (True, False):
        config = ComparisonConfig(n_hyperperiods=2, seed=424242,
                                  batched_planning=batched_planning,
                                  **config_kwargs)
        results.append(compare_schedulers(taskset, processor, schedulers, config))
    return results


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_policy_workload_matrix(processor, two_task_set, policy, workload):
    batched, sequential = run_both_plans(
        two_task_set, processor, make_schedulers(("wcs", "acs"), processor),
        policy=get_policy(policy), workload=workload)
    assert fingerprint(batched) == fingerprint(sequential)


def test_scenario_weighted_scheduler(processor, three_task_set):
    schedulers = dict(make_schedulers(("wcs", "acs"), processor))
    schedulers["acs_stochastic"] = StochasticACSScheduler(processor, n_scenarios=4)
    batched, sequential = run_both_plans(three_task_set, processor, schedulers)
    assert fingerprint(batched) == fingerprint(sequential)


def test_discrete_voltage_simulation(processor, two_task_set):
    simulation = SimulationConfig(
        n_hyperperiods=2, seed=424242,
        voltage_levels=VoltageLevels([0.5, 1.0, 2.0, 3.0, 4.0, 5.0]))
    batched, sequential = run_both_plans(
        two_task_set, processor, make_schedulers(("wcs", "acs"), processor),
        simulation=simulation)
    assert fingerprint(batched) == fingerprint(sequential)


def test_batched_planning_is_the_default():
    assert ComparisonConfig().batched_planning is True
    assert replace(ComparisonConfig(), batched_planning=False).batched_planning is False
