"""Tests for the scheduler-comparison harness."""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.harness import (
    ComparisonConfig,
    compare_schedulers,
    default_schedulers,
)
from repro.offline.baselines import MaxSpeedScheduler


class TestCompareSchedulers:
    def test_default_pair(self, two_task_set, processor):
        result = compare_schedulers(two_task_set, processor,
                                    config=ComparisonConfig(n_hyperperiods=10, seed=1))
        assert set(result.methods()) == {"acs", "wcs"}
        assert result.improvement_over_baseline("wcs") == pytest.approx(0.0)
        # On this task set ACS should clearly beat WCS at runtime.
        assert result.improvement_over_baseline("acs") > 5.0
        for outcome in result.outcomes.values():
            assert outcome.simulation.met_all_deadlines

    def test_custom_scheduler_set(self, two_task_set, processor):
        schedulers = dict(default_schedulers(processor))
        schedulers["max_speed"] = MaxSpeedScheduler(processor)
        result = compare_schedulers(two_task_set, processor, schedulers,
                                    ComparisonConfig(n_hyperperiods=5, seed=1))
        # Max-speed packing is the energy ceiling: ACS improves on it even more than on WCS.
        assert result.improvement_over_baseline("max_speed") <= 0.0  # vs wcs baseline it's worse
        assert result.energy("max_speed") >= result.energy("acs")

    def test_unknown_baseline_rejected(self, two_task_set, processor):
        with pytest.raises(ExperimentError):
            compare_schedulers(two_task_set, processor,
                               config=ComparisonConfig(baseline="oracle"))

    def test_rows_structure(self, two_task_set, processor):
        result = compare_schedulers(two_task_set, processor,
                                    config=ComparisonConfig(n_hyperperiods=5, seed=1))
        rows = result.rows()
        assert len(rows) == 2
        for row in rows:
            method, energy, improvement, misses = row
            assert method in ("acs", "wcs")
            assert energy > 0
            assert misses == 0

    def test_paired_randomness(self, two_task_set, processor):
        """Both methods must see identical workload draws (paired comparison)."""
        config = ComparisonConfig(n_hyperperiods=5, seed=123)
        first = compare_schedulers(two_task_set, processor, config=config)
        second = compare_schedulers(two_task_set, processor, config=config)
        assert first.energy("acs") == pytest.approx(second.energy("acs"))
        assert first.energy("wcs") == pytest.approx(second.energy("wcs"))
