"""Batched-harness equivalence: per-unit seeds reproduce the serial harness bitwise.

``ComparisonConfig(batched=True)`` routes every simulation of a sweep through
the structure-of-arrays engine — all ``(job, method)`` units advance in
lock-step, and with ``n_jobs > 1`` the lock-step batches are split across a
process pool.  Because every unit derives its generator from the same
SeedSequence coordinates the serial harness uses (one fresh
``default_rng(config.seed)`` per method), the results must be *bitwise*
identical to the plain one-at-a-time harness for any seed, sweep size and
worker count.  The property test drives that with hypothesis-chosen seeds
and shapes; the schedulers are the NLP-free baselines so examples stay fast.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.harness import (
    ComparisonConfig,
    compare_schedulers,
    make_schedulers,
    random_comparison_job,
    run_comparisons,
)
from repro.power.presets import ideal_processor
from repro.workloads.random_tasksets import RandomTaskSetConfig

PROCESSOR = ideal_processor(fmax=1000.0)
#: NLP-free offline methods: the property test exercises seed derivation and
#: the batched engine, not the optimiser.
SCHEDULERS = ("max_speed",)


def result_fingerprint(result):
    """Every float-bearing field of every method outcome, exactly."""
    return {
        method: (
            outcome.simulation.total_energy,
            tuple(outcome.simulation.energy_per_hyperperiod),
            outcome.simulation.transition_energy,
            tuple(outcome.simulation.energy_by_task.items()),
            tuple(outcome.simulation.deadline_misses),
            outcome.simulation.jobs_completed,
        )
        for method, outcome in result.outcomes.items()
    }


def build_jobs(seed, n_tasksets, n_tasks, n_hyperperiods, batched):
    config = ComparisonConfig(n_hyperperiods=n_hyperperiods, seed=seed,
                              baseline="max_speed", batched=batched)
    taskset_config = RandomTaskSetConfig(n_tasks=n_tasks,
                                         periods=(10.0, 20.0, 40.0))
    return [
        random_comparison_job(PROCESSOR, taskset_config, config, index,
                              taskset_index=index, schedulers=SCHEDULERS)
        for index in range(n_tasksets)
    ]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_tasksets=st.integers(min_value=1, max_value=4),
    n_tasks=st.integers(min_value=1, max_value=3),
    n_hyperperiods=st.integers(min_value=1, max_value=4),
)
def test_batched_sweep_reproduces_serial_harness_bitwise(
        seed, n_tasksets, n_tasks, n_hyperperiods):
    serial = run_comparisons(
        build_jobs(seed, n_tasksets, n_tasks, n_hyperperiods, batched=False))
    batched = run_comparisons(
        build_jobs(seed, n_tasksets, n_tasks, n_hyperperiods, batched=True))
    assert [result_fingerprint(r) for r in serial] == \
        [result_fingerprint(r) for r in batched]


def test_batched_sweep_is_pool_invariant():
    """The lock-step chunks a pool executes agree with the in-process batch."""
    serial = run_comparisons(build_jobs(2005, 5, 3, 3, batched=False), n_jobs=1)
    pooled = run_comparisons(build_jobs(2005, 5, 3, 3, batched=True), n_jobs=2)
    assert [result_fingerprint(r) for r in serial] == \
        [result_fingerprint(r) for r in pooled]


def test_single_comparison_batched_flag():
    """compare_schedulers honours ComparisonConfig.batched directly."""
    config = ComparisonConfig(n_hyperperiods=4, seed=11, baseline="max_speed")
    job = random_comparison_job(PROCESSOR, RandomTaskSetConfig(n_tasks=3),
                                config, 0, schedulers=SCHEDULERS)
    taskset = job.resolve_taskset()
    methods = make_schedulers(SCHEDULERS, PROCESSOR)
    plain = compare_schedulers(taskset, PROCESSOR, methods, job.config)
    batched = compare_schedulers(taskset, PROCESSOR, methods,
                                 replace(job.config, batched=True))
    assert result_fingerprint(plain) == result_fingerprint(batched)
