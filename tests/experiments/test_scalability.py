"""Tests for the multicore scalability sweep."""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.scalability import (
    ScalabilityConfig,
    run_multicore_point,
    run_scalability,
)
from repro.reporting.serialization import scalability_result_to_dict

QUICK = ScalabilityConfig(
    core_counts=(1, 2),
    partitioners=("ffd", "wfd"),
    application="cnc",
    n_hyperperiods=3,
    seed=2005,
)


@pytest.fixture(scope="module")
def result():
    return run_scalability(QUICK)


class TestSweep:
    def test_grid_is_complete(self, result):
        assert len(result.points) == 4
        for n_cores in (1, 2):
            for partitioner in ("ffd", "wfd"):
                point = result.point(n_cores, partitioner)
                assert point.deadline_misses == 0
                assert point.mean_energy_per_hyperperiod > 0

    def test_balancing_beats_packing_at_m2(self, result):
        # WFD spreads the CNC set over both cores; FFD packs it onto one.
        # With the quadratic energy law the balanced partition must win big.
        wfd = result.point(2, "wfd").mean_energy_per_hyperperiod
        ffd = result.point(2, "ffd").mean_energy_per_hyperperiod
        assert wfd < 0.8 * ffd
        assert result.improvement_over_single_core(2, "wfd") > 20.0

    def test_identical_partitions_give_identical_energy(self, result):
        # FFD at m=2 packs everything onto core 0, i.e. the same partition as
        # m=1 — the paired seeding must make the energies exactly equal.
        assert result.point(2, "ffd").mean_energy_per_hyperperiod == \
            result.point(1, "ffd").mean_energy_per_hyperperiod
        assert result.improvement_over_single_core(2, "ffd") == 0.0

    def test_markdown_report(self, result):
        report = result.to_markdown()
        assert "mean energy per global hyperperiod" in report
        assert "energy improvement over m=1" in report
        assert "ffd" in report and "wfd" in report
        assert "application: cnc" in report

    def test_parallel_matches_serial(self, result):
        parallel = run_scalability(ScalabilityConfig(
            core_counts=QUICK.core_counts, partitioners=QUICK.partitioners,
            application=QUICK.application, n_hyperperiods=QUICK.n_hyperperiods,
            seed=QUICK.seed, jobs=2))
        assert parallel.to_markdown() == result.to_markdown()

    def test_serialization_round_trip_shape(self, result):
        data = scalability_result_to_dict(result)
        assert data["config"]["core_counts"] == [1, 2]
        assert len(data["points"]) == 4
        for point in data["points"]:
            assert point["mean_energy_per_hyperperiod"] > 0
            assert "improvement_over_single_core_percent" in point


class TestPoint:
    def test_single_point_runs(self):
        result = run_multicore_point(QUICK, 2, "wfd")
        assert result.n_cores == 2
        assert result.partitioner == "wfd"
        assert result.met_all_deadlines

    def test_unknown_application_rejected(self):
        config = ScalabilityConfig(application="satellite")
        with pytest.raises(ExperimentError):
            config.build_taskset()

    def test_gap_application_builds(self):
        config = ScalabilityConfig(application="gap", gap_tasks=5)
        taskset = config.build_taskset()
        assert len(taskset) == 5
