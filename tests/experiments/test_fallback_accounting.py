"""Fallback-reason accounting: per-unit tallies and the excessive-fallback warning.

A batched comparison that cannot vectorize a unit silently took the compiled
fallback before this accounting existed; now every fallback surfaces as a
``"batch:<reason>"`` (simulation) or ``"solve:<reason>"`` (planning) tally on
the :class:`ComparisonResult`, sweeps merge them, and a sweep that falls back
for more than half its units warns once.
"""

import warnings

import pytest

from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.experiments.harness import (
    ComparisonConfig,
    aggregate_fallback_reasons,
    compare_schedulers,
    make_schedulers,
    warn_if_excessive_fallback,
)
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.power.presets import ideal_processor

PROCESSOR = ideal_processor(fmax=1000.0)
SCHEDULERS = ("max_speed", "wcs")
TASKSET = TaskSet([
    Task("a", period=10, wcec=1800, acec=1000, bcec=300),
    Task("b", period=20, wcec=4200, acec=2400, bcec=900),
], name="fallback")


def run_comparison(config):
    return compare_schedulers(TASKSET, PROCESSOR,
                              schedulers=make_schedulers(SCHEDULERS, PROCESSOR),
                              config=config)


class TestAggregate:
    def test_merges_and_skips_empties(self):
        merged = aggregate_fallback_reasons([
            {"batch:trace": 2}, None, {}, {"batch:trace": 1, "solve:size": 3},
        ])
        assert merged == {"batch:trace": 3, "solve:size": 3}

    def test_empty_input(self):
        assert aggregate_fallback_reasons([]) == {}


class TestComparisonTallies:
    def test_vectorizable_batched_run_reports_no_fallbacks(self):
        config = ComparisonConfig(n_hyperperiods=2, seed=7, baseline="max_speed",
                                  batched=True)
        result = run_comparison(config)
        assert result.fallback_reasons == {}

    def test_traced_batched_units_tally_batch_trace(self):
        config = ComparisonConfig(n_hyperperiods=2, seed=7, baseline="max_speed",
                                  batched=True, trace=True)
        result = run_comparison(config)
        # Every method's unit falls back: tracing needs the event stream.
        assert result.fallback_reasons == {"batch:trace": len(SCHEDULERS)}

    def test_non_batched_run_reports_no_fallbacks(self):
        config = ComparisonConfig(n_hyperperiods=2, seed=7, baseline="max_speed",
                                  trace=True)
        result = run_comparison(config)
        assert result.fallback_reasons == {}


class TestSweepSummary:
    def test_sweep_merges_tallies_and_warns_when_excessive(self):
        cfg = SweepConfig(n_tasksets=2, n_tasks=2, n_hyperperiods=2,
                          periods=(10.0, 20.0), schedulers=("max_speed", "wcs"),
                          baseline="max_speed", batched=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a fully vectorized sweep stays silent
            clean = run_sweep(cfg)
        assert clean.fallback_summary() == {}
        assert clean.total_units() == 4

    def test_serialized_sweep_carries_the_summary(self):
        from repro.reporting.serialization import sweep_result_to_dict

        cfg = SweepConfig(n_tasksets=1, n_tasks=2, n_hyperperiods=2,
                          periods=(10.0, 20.0), schedulers=("max_speed",),
                          baseline="max_speed")
        data = sweep_result_to_dict(run_sweep(cfg))
        # Non-default-only keys: a clean, non-batched sweep serializes exactly
        # as it did before fallback accounting existed.
        assert "fallback_reasons" not in data
        assert "batched" not in data["config"]


class TestWarning:
    def test_warns_above_half(self):
        with pytest.warns(RuntimeWarning, match="fell back for 3/4"):
            warn_if_excessive_fallback({"batch:trace": 3}, 4, context="sweep")

    def test_silent_at_or_below_half(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_if_excessive_fallback({"batch:trace": 2}, 4, context="sweep")

    def test_solve_reasons_do_not_trigger_the_batch_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_if_excessive_fallback({"solve:no-batch": 100}, 4, context="sweep")

    def test_zero_units_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_if_excessive_fallback({}, 0, context="sweep")
