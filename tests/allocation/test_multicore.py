"""Tests for the per-core offline planning layer (MulticoreProblem/MulticorePlan)."""

import pytest

from repro.allocation.multicore import MulticorePlan, MulticoreProblem, plan_multicore
from repro.core.errors import AllocationError
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.power.presets import ideal_processor

PROCESSOR = ideal_processor(fmax=1000.0)


@pytest.fixture
def taskset():
    return TaskSet([
        Task("a", period=10, wcec=2000, acec=1000, bcec=400),
        Task("b", period=20, wcec=4000, acec=2000, bcec=800),
        Task("c", period=20, wcec=4000, acec=2000, bcec=800),
        Task("d", period=40, wcec=6000, acec=3000, bcec=1200),
    ], name="plan-tasks")


class TestProblem:
    def test_rejects_zero_cores(self, taskset):
        with pytest.raises(AllocationError):
            MulticoreProblem(taskset, PROCESSOR, 0)

    def test_partition_uses_configured_heuristic(self, taskset):
        partition = MulticoreProblem(taskset, PROCESSOR, 2, partitioner="wfd").partition()
        assert partition.partitioner == "wfd"
        assert partition.n_cores == 2


class TestPlan:
    def test_plan_structure(self, taskset):
        problem = MulticoreProblem(taskset, PROCESSOR, 2, partitioner="wfd", method="wcs")
        plan = plan_multicore(problem)
        assert plan.n_cores == 2
        assert plan.method == "wcs"
        assert plan.hyperperiod == taskset.hyperperiod
        for core in plan.partition.used_cores():
            schedule = plan.schedules[core]
            assert schedule is not None
            schedule.validate(PROCESSOR)
            core_names = {task.name for task in plan.partition.core_tasksets[core]}
            assert {inst.task.name for inst in schedule.expansion.instances} == core_names

    def test_idle_cores_have_no_schedule(self, taskset):
        problem = MulticoreProblem(taskset, PROCESSOR, 8, partitioner="ffd")
        plan = plan_multicore(problem)
        for core in range(plan.n_cores):
            populated = plan.partition.core_tasksets[core] is not None
            assert (plan.schedules[core] is not None) == populated
        with pytest.raises(AllocationError):
            idle = next(c for c in range(plan.n_cores)
                        if plan.partition.core_tasksets[c] is None)
            plan.hyperperiods_per_frame(idle)

    def test_core_hyperperiods_divide_the_global_frame(self, taskset):
        plan = plan_multicore(MulticoreProblem(taskset, PROCESSOR, 4, partitioner="wfd"))
        for core in plan.partition.used_cores():
            repeats = plan.hyperperiods_per_frame(core)
            assert repeats >= 1
            assert repeats * plan.schedules[core].expansion.horizon == pytest.approx(
                plan.hyperperiod)

    def test_parallel_planning_matches_serial(self, taskset):
        problem = MulticoreProblem(taskset, PROCESSOR, 3, partitioner="wfd")
        serial = plan_multicore(problem, jobs=1)
        parallel = plan_multicore(problem, jobs=2)
        assert serial.partition.assignment == parallel.partition.assignment
        for left, right in zip(serial.schedules, parallel.schedules):
            if left is None:
                assert right is None
                continue
            assert left.end_times() == right.end_times()
            assert left.wc_budgets() == right.wc_budgets()

    def test_explicit_partition_must_match_core_count(self, taskset):
        problem = MulticoreProblem(taskset, PROCESSOR, 3)
        other = MulticoreProblem(taskset, PROCESSOR, 2).partition()
        with pytest.raises(AllocationError):
            plan_multicore(problem, partition=other)

    def test_plan_validates_schedule_cover(self, taskset):
        problem = MulticoreProblem(taskset, PROCESSOR, 2, partitioner="wfd")
        partition = problem.partition()
        with pytest.raises(AllocationError):
            MulticorePlan(partition=partition, schedules=[None, None],
                          method="acs", processor=PROCESSOR)
