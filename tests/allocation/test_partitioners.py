"""Tests for the task-to-core partitioning heuristics.

The property-style suite generates random task sets and asserts, for every
registered partitioner and several core counts, the two invariants any valid
partition must satisfy: every task is placed on exactly one core, and every
populated core passes the full single-core feasibility test.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.partitioners import (
    BestFitDecreasingPartitioner,
    EnergyAwarePartitioner,
    FirstFitDecreasingPartitioner,
    Partition,
    WorstFitDecreasingPartitioner,
    available_partitioners,
    get_partitioner,
    predicted_energy_rate,
)
from repro.analysis.feasibility import check_feasibility
from repro.core.errors import AllocationError, InfeasibleTaskSetError
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.power.presets import ideal_processor

PROCESSOR = ideal_processor(fmax=1000.0)


@st.composite
def partitionable_tasksets(draw):
    """3–6 tasks, divisor-friendly periods, every task single-core feasible alone."""
    n_tasks = draw(st.integers(min_value=3, max_value=6))
    periods = draw(st.lists(st.sampled_from([10.0, 20.0, 40.0]),
                            min_size=n_tasks, max_size=n_tasks))
    shares = draw(st.lists(st.floats(min_value=0.05, max_value=1.0),
                           min_size=n_tasks, max_size=n_tasks))
    ratio = draw(st.sampled_from([0.2, 0.5, 0.9]))
    utilization = draw(st.floats(min_value=0.3, max_value=0.85))
    total_share = sum(shares)
    tasks = []
    for index, (period, share) in enumerate(zip(periods, shares)):
        task_utilization = utilization * share / total_share
        wcec = max(task_utilization * period * PROCESSOR.fmax, 1.0)
        tasks.append(Task(f"t{index}", period=period, wcec=wcec).scaled(bcec_ratio=ratio))
    return TaskSet(tasks, name="hypothesis")


def assert_valid_partition(partition, taskset, n_cores):
    """The two partition invariants: exact cover and per-core schedulability."""
    assert partition.n_cores == n_cores
    placed = []
    for core_set in partition.core_tasksets:
        if core_set is None:
            continue
        report = check_feasibility(core_set, PROCESSOR)
        assert report.schedulable, report.violations
        placed.extend(task.name for task in core_set)
    assert sorted(placed) == sorted(task.name for task in taskset)
    assert partition.assignment.keys() == {task.name for task in taskset}


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(taskset=partitionable_tasksets(),
       n_cores=st.integers(min_value=1, max_value=8),
       name=st.sampled_from(available_partitioners()))
def test_every_partitioner_produces_a_valid_partition(taskset, n_cores, name):
    partitioner = get_partitioner(name, PROCESSOR)
    partition = partitioner.partition(taskset, n_cores)
    assert_valid_partition(partition, taskset, n_cores)
    # Per-core priorities are inherited from the parent, never reassigned.
    parent = taskset.priorities
    for core_set in partition.core_tasksets:
        if core_set is None:
            continue
        for task in core_set:
            assert core_set.priority_of(task) == parent[task.name]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(taskset=partitionable_tasksets(), n_cores=st.integers(min_value=1, max_value=4))
def test_partitioners_are_deterministic(taskset, n_cores):
    for name in available_partitioners():
        first = get_partitioner(name, PROCESSOR).partition(taskset, n_cores)
        second = get_partitioner(name, PROCESSOR).partition(taskset, n_cores)
        assert first.assignment == second.assignment


class TestHeuristicShapes:
    """Deterministic spot checks of the placement behaviour."""

    def taskset(self):
        return TaskSet([
            Task("a", period=10, wcec=2000, acec=1000, bcec=400),
            Task("b", period=10, wcec=2000, acec=1000, bcec=400),
            Task("c", period=20, wcec=4000, acec=2000, bcec=800),
            Task("d", period=20, wcec=4000, acec=2000, bcec=800),
        ], name="square")

    def test_ffd_packs_onto_first_core(self):
        partition = FirstFitDecreasingPartitioner(PROCESSOR).partition(self.taskset(), 4)
        assert set(partition.assignment.values()) == {0}
        assert partition.used_cores() == [0]

    def test_wfd_spreads_over_all_cores(self):
        partition = WorstFitDecreasingPartitioner(PROCESSOR).partition(self.taskset(), 4)
        assert sorted(partition.assignment.values()) == [0, 1, 2, 3]
        utilizations = partition.utilizations(PROCESSOR)
        assert max(utilizations) - min(utilizations) < 1e-9

    def test_bfd_fills_the_fullest_feasible_core(self):
        # With every core feasible for everything, best-fit behaves like
        # first-fit: it keeps topping up core 0.
        partition = BestFitDecreasingPartitioner(PROCESSOR).partition(self.taskset(), 4)
        assert set(partition.assignment.values()) == {0}

    def test_energy_aware_balances_on_ceff_not_utilization(self):
        # Two utilisation-identical hogs, one with 4x the switching
        # capacitance.  A utilisation balancer is indifferent; the
        # energy-aware heuristic must put the light third task next to the
        # *expensive* hog (lowest predicted energy after placement is on the
        # cheap core only if energy, not utilisation, is what's balanced).
        taskset = TaskSet([
            Task("hog_cheap", period=10, wcec=3000, acec=1500, bcec=600, ceff=1.0),
            Task("hog_dear", period=10, wcec=3000, acec=1500, bcec=600, ceff=4.0),
            Task("light", period=20, wcec=1000, acec=500, bcec=200, ceff=1.0),
        ], name="ceff-split")
        partition = EnergyAwarePartitioner(PROCESSOR).partition(taskset, 2)
        assignment = partition.assignment
        assert assignment["hog_cheap"] != assignment["hog_dear"]
        assert assignment["light"] == assignment["hog_cheap"]

    def test_predicted_energy_rate_sees_ceff(self):
        cheap = TaskSet([Task("t", period=10, wcec=3000, acec=1500, ceff=1.0)])
        dear = TaskSet([Task("t", period=10, wcec=3000, acec=1500, ceff=4.0)])
        assert predicted_energy_rate(dear, PROCESSOR) > predicted_energy_rate(cheap, PROCESSOR)


class TestErrors:
    def test_unknown_partitioner(self):
        with pytest.raises(AllocationError):
            get_partitioner("oracle", PROCESSOR)

    def test_zero_cores_rejected(self):
        taskset = TaskSet([Task("t", period=10, wcec=1000)])
        with pytest.raises(AllocationError):
            WorstFitDecreasingPartitioner(PROCESSOR).partition(taskset, 0)

    def test_infeasible_everywhere_raises(self):
        # Three tasks of utilisation 0.6 cannot share 1 core.
        taskset = TaskSet([
            Task(f"t{i}", period=10, wcec=6000) for i in range(3)
        ], name="too-heavy")
        with pytest.raises(InfeasibleTaskSetError):
            FirstFitDecreasingPartitioner(PROCESSOR).partition(taskset, 1)

    def test_partition_rejects_double_placement(self):
        taskset = TaskSet([Task("t", period=10, wcec=1000, priority=0)])
        core = TaskSet([Task("t", period=10, wcec=1000, priority=0)],
                       priority_policy="explicit")
        with pytest.raises(AllocationError):
            Partition(taskset=taskset, core_tasksets=[core, core], partitioner="manual")

    def test_partition_rejects_missing_task(self):
        taskset = TaskSet([
            Task("t", period=10, wcec=1000, priority=0),
            Task("u", period=20, wcec=1000, priority=1),
        ])
        core = TaskSet([Task("t", period=10, wcec=1000, priority=0)],
                       priority_policy="explicit")
        with pytest.raises(AllocationError):
            Partition(taskset=taskset, core_tasksets=[core, None], partitioner="manual")


class TestRegistry:
    def test_names(self):
        assert available_partitioners() == ("bfd", "energy", "ffd", "wfd")

    @pytest.mark.parametrize("name,cls", [
        ("ffd", FirstFitDecreasingPartitioner),
        ("bfd", BestFitDecreasingPartitioner),
        ("wfd", WorstFitDecreasingPartitioner),
        ("energy", EnergyAwarePartitioner),
    ])
    def test_lookup(self, name, cls):
        partitioner = get_partitioner(name, PROCESSOR)
        assert isinstance(partitioner, cls)
        assert partitioner.name == name
