"""Tests for the fixed-priority response-time analysis."""

import pytest

from repro.analysis.response_time import breakdown_frequency, is_schedulable, response_times
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.power.presets import ideal_processor


class TestResponseTimes:
    def test_textbook_example(self, processor):
        """Classic RTA example: C=(1,2,3)·1000 cycles, T=(4,6,10)·1 ms at fmax=1000."""
        taskset = TaskSet([
            Task("t1", period=4, wcec=1000),
            Task("t2", period=6, wcec=2000),
            Task("t3", period=10, wcec=3000),
        ])
        times = response_times(taskset, processor)
        assert times["t1"] == pytest.approx(1.0)
        assert times["t2"] == pytest.approx(3.0)
        # t3: R = 3 + ceil(R/4)·1 + ceil(R/6)·2 → fixed point at 10.
        assert times["t3"] == pytest.approx(10.0)

    def test_unschedulable_reports_infinite(self, processor):
        taskset = TaskSet([
            Task("t1", period=4, wcec=2500),
            Task("t2", period=6, wcec=2500),
            Task("t3", period=10, wcec=3000),
        ])
        times = response_times(taskset, processor)
        assert times["t3"] == float("inf") or times["t3"] > 10.0

    def test_scaling_with_frequency(self, two_task_set, processor):
        full = response_times(two_task_set, processor)
        half = response_times(two_task_set, processor, frequency=processor.fmax / 2)
        assert half["A"] == pytest.approx(2 * full["A"])

    def test_rejects_nonpositive_frequency(self, two_task_set, processor):
        from repro.core.errors import AnalysisError
        with pytest.raises(AnalysisError):
            response_times(two_task_set, processor, frequency=0.0)


class TestSchedulability:
    def test_schedulable_at_fmax(self, two_task_set, three_task_set, processor):
        assert is_schedulable(two_task_set, processor)
        assert is_schedulable(three_task_set, processor)

    def test_not_schedulable_when_too_slow(self, two_task_set, processor):
        assert not is_schedulable(two_task_set, processor, frequency=0.5 * processor.fmax)


class TestBreakdownFrequency:
    def test_breakdown_between_bounds(self, two_task_set, processor):
        frequency = breakdown_frequency(two_task_set, processor)
        assert frequency is not None
        assert processor.fmin <= frequency <= processor.fmax
        assert is_schedulable(two_task_set, processor, frequency)
        # Slightly slower must fail (unless already clamped at fmin).
        if frequency > processor.fmin * 1.01:
            assert not is_schedulable(two_task_set, processor, frequency * 0.98)

    def test_infeasible_returns_none(self, processor):
        overloaded = TaskSet([Task("a", period=10, wcec=10_500), Task("b", period=20, wcec=2000)])
        assert breakdown_frequency(overloaded, processor) is None

    def test_light_set_clamps_to_fmin(self):
        processor = ideal_processor(fmax=1000.0, vmin=2.5)  # fmin = 500
        light = TaskSet([Task("a", period=100, wcec=100)])
        assert breakdown_frequency(light, processor) == pytest.approx(processor.fmin)
