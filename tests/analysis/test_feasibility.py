"""Tests for the combined feasibility check."""

import pytest

from repro.analysis.feasibility import assert_feasible, check_feasibility
from repro.core.errors import InfeasibleTaskSetError
from repro.core.task import Task
from repro.core.taskset import TaskSet


class TestCheckFeasibility:
    def test_feasible_set_passes(self, two_task_set, processor):
        report = check_feasibility(two_task_set, processor)
        assert report.schedulable
        assert bool(report)
        assert report.utilization == pytest.approx(0.7)
        assert report.violations == []
        assert report.response_times["A"] <= 10

    def test_overutilised_set_fails(self, processor):
        taskset = TaskSet([Task("a", period=10, wcec=8000), Task("b", period=20, wcec=8000)])
        report = check_feasibility(taskset, processor)
        assert not report.schedulable
        assert any("utilisation" in v for v in report.violations)

    def test_response_time_violation_detected(self, processor):
        # Utilisation below 1 but RM-unschedulable (tight deadlines).
        taskset = TaskSet([
            Task("a", period=10, wcec=6000),
            Task("b", period=14, wcec=5000, deadline=10),
        ])
        report = check_feasibility(taskset, processor)
        assert not report.schedulable
        assert any("response time" in v for v in report.violations)


class TestAssertFeasible:
    def test_returns_report_when_ok(self, two_task_set, processor):
        report = assert_feasible(two_task_set, processor)
        assert report.schedulable

    def test_raises_when_infeasible(self, processor):
        taskset = TaskSet([Task("a", period=10, wcec=20000)])
        with pytest.raises(InfeasibleTaskSetError):
            assert_feasible(taskset, processor)
