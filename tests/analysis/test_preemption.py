"""Tests for the fully preemptive schedule expansion (Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.errors import AnalysisError
from repro.core.task import Task
from repro.core.taskset import TaskSet


class TestExpansionStructure:
    def test_two_tasks(self, two_task_set):
        """A (T=10, high) preempts B (T=20, low) at its second release (t=10)."""
        expansion = expand_fully_preemptive(two_task_set)
        keys = expansion.total_order_keys()
        assert keys == ["A[0].0", "B[0].0", "A[1].0", "B[0].1"]
        b_subs = expansion.sub_instances_of(two_task_set.instances()[1])
        assert [s.slot_start for s in b_subs] == [0, 10]
        assert [s.slot_end for s in b_subs] == [10, 20]

    def test_three_tasks_nested_preemption(self, three_task_set):
        expansion = expand_fully_preemptive(three_task_set)
        # lo (T=40) is split by every release of hi (10, 20, 30) and mid (20).
        lo_instance = [i for i in expansion.instances if i.task.name == "lo"][0]
        lo_subs = expansion.sub_instances_of(lo_instance)
        assert [s.slot_start for s in lo_subs] == [0, 10, 20, 30]
        # mid's second job (released at 20) is split by hi's release at 30.
        mid_jobs = [i for i in expansion.instances if i.task.name == "mid"]
        second_mid = expansion.sub_instances_of(mid_jobs[1])
        assert [s.slot_start for s in second_mid] == [20, 30]

    def test_highest_priority_task_never_split(self, three_task_set):
        expansion = expand_fully_preemptive(three_task_set)
        for instance in expansion.instances:
            if instance.task.name == "hi":
                assert len(expansion.sub_instances_of(instance)) == 1

    def test_orders_are_consecutive(self, three_task_set):
        expansion = expand_fully_preemptive(three_task_set)
        assert [s.order for s in expansion.sub_instances] == list(range(len(expansion)))

    def test_equal_period_tasks_do_not_preempt_each_other(self):
        taskset = TaskSet([Task("a", period=10, wcec=100), Task("b", period=10, wcec=100)])
        expansion = expand_fully_preemptive(taskset)
        assert all(len(expansion.sub_instances_of(i)) == 1 for i in expansion.instances)

    def test_custom_horizon_multiple_hyperperiods(self, two_task_set):
        expansion = expand_fully_preemptive(two_task_set, horizon=40)
        assert expansion.horizon == 40
        assert len(expansion.instances) == 6

    def test_bad_horizon_rejected(self, two_task_set):
        with pytest.raises(AnalysisError):
            expand_fully_preemptive(two_task_set, horizon=0)

    def test_unknown_instance_lookup_rejected(self, two_task_set, three_task_set):
        expansion = expand_fully_preemptive(two_task_set)
        foreign = three_task_set.instances()[0]
        with pytest.raises(AnalysisError):
            expansion.sub_instances_of(foreign)

    def test_max_sub_instances_per_job(self, three_task_set):
        expansion = expand_fully_preemptive(three_task_set)
        assert expansion.max_sub_instances_per_job() == 4


class TestExpansionInvariants:
    @given(
        periods=st.lists(st.sampled_from([5, 10, 20, 40]), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_slots_tile_windows_and_order_consistent(self, periods):
        """For random period mixes, the built-in validate() passes and budget bookkeeping holds."""
        tasks = [Task(f"t{i}", period=float(p), wcec=100.0 * (i + 1)) for i, p in enumerate(periods)]
        taskset = TaskSet(tasks)
        expansion = expand_fully_preemptive(taskset)
        expansion.validate()  # raises on any structural violation
        # Every job appears, and its sub-instance count equals 1 + (higher-priority releases inside its window).
        for instance in expansion.instances:
            subs = expansion.sub_instances_of(instance)
            higher = taskset.higher_priority_tasks(instance.task.name)
            expected_splits = 0
            for other in higher:
                job = 0
                while True:
                    release = other.release_time(job)
                    if release >= instance.deadline - 1e-12:
                        break
                    if release > instance.release + 1e-12:
                        expected_splits += 1
                    job += 1
            distinct_split_points = len({s.slot_start for s in subs}) - 1
            assert len(subs) == distinct_split_points + 1
            # Coincident releases merge split points, so expected_splits is an upper bound.
            assert len(subs) <= expected_splits + 1
            assert len(subs) >= 1
