"""Tests for utilisation-based analysis."""

import pytest

from repro.analysis.utilization import (
    average_utilization,
    liu_layland_bound,
    minimum_constant_frequency,
    passes_liu_layland,
    total_utilization,
)
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.power.presets import ideal_processor


class TestUtilization:
    def test_total_and_average(self, two_task_set, processor):
        assert total_utilization(two_task_set, processor) == pytest.approx(0.7)
        assert average_utilization(two_task_set, processor) == pytest.approx(0.37)

    def test_liu_layland_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))
        assert liu_layland_bound(100) == pytest.approx(0.6956, abs=1e-3)  # approaches ln 2 from above
        with pytest.raises(ValueError):
            liu_layland_bound(0)

    def test_passes_liu_layland(self, processor):
        light = TaskSet([Task("a", period=10, wcec=1000), Task("b", period=20, wcec=2000)])
        assert passes_liu_layland(light, processor)
        heavy = TaskSet([Task("a", period=10, wcec=5000), Task("b", period=20, wcec=9000)])
        assert not passes_liu_layland(heavy, processor)


class TestMinimumConstantFrequency:
    def test_scales_with_utilization(self, two_task_set, processor):
        frequency = minimum_constant_frequency(two_task_set, processor)
        assert frequency == pytest.approx(0.7 * processor.fmax)

    def test_average_mode(self, two_task_set, processor):
        frequency = minimum_constant_frequency(two_task_set, processor, use_acec=True)
        assert frequency == pytest.approx(0.37 * processor.fmax)

    def test_overloaded_returns_none(self, processor):
        overloaded = TaskSet([Task("a", period=10, wcec=11_000)])
        assert minimum_constant_frequency(overloaded, processor) is None

    def test_never_below_fmin(self):
        processor = ideal_processor(fmax=1000.0, vmin=2.5)  # fmin = 500
        tiny = TaskSet([Task("a", period=100, wcec=10)])
        assert minimum_constant_frequency(tiny, processor) == pytest.approx(processor.fmin)
