"""Regression tests for benchmarks/compare_bench.py (a script, not a package).

Two silent-failure modes are pinned here:

* a benchmark with a non-positive baseline wall time used to be reported as
  ``+0.0%`` — i.e. a perfect score — no matter how slow the fresh run was;
* a benchmark present in the baseline but missing from the fresh run (renamed,
  deselected, broken collection) was only listed informally, so shrinking
  coverage never warned anyone.

Both now emit GitHub ``::warning`` annotations.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def snapshot(path: Path, walls: dict, commit: str = "abc123") -> Path:
    payload = {
        "commit": commit,
        "benchmarks": [{"name": name, "wall_s": wall} for name, wall in walls.items()],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def run(tmp_path, baseline_walls, fresh_walls, extra_args=()):
    baseline = snapshot(tmp_path / "BENCH_base.json", baseline_walls)
    fresh = snapshot(tmp_path / "BENCH_fresh.json", fresh_walls)
    argv = [str(fresh), "--baseline", str(baseline), *extra_args]
    return compare_bench.main(argv)


def test_normal_regression_is_warned_and_can_fail(tmp_path, capsys):
    status = run(tmp_path, {"a": 1.0, "b": 1.0}, {"a": 1.0, "b": 2.0},
                 extra_args=["--threshold", "25", "--fail"])
    out = capsys.readouterr().out
    assert status == 1
    assert "::warning title=benchmark regression::b is 100.0% slower" in out
    assert "  ! b:" in out and "  ! a:" not in out


def test_zero_baseline_warns_instead_of_reporting_zero_delta(tmp_path, capsys):
    """A 0.000s baseline must not translate a 9s fresh run into '+0.0%'."""
    status = run(tmp_path, {"a": 0.0}, {"a": 9.0},
                 extra_args=["--threshold", "25", "--fail"])
    out = capsys.readouterr().out
    assert status == 0  # not comparable, so not a failure -- but loudly flagged
    assert "+0.0%" not in out
    assert "::warning title=unusable benchmark baseline::a" in out
    assert "regression check skipped" in out


def test_dropped_benchmark_warns(tmp_path, capsys):
    status = run(tmp_path, {"kept": 1.0, "gone_1": 1.0, "gone_2": 1.0},
                 {"kept": 1.0, "brand_new": 1.0})
    out = capsys.readouterr().out
    assert status == 0
    assert ("::warning title=benchmarks dropped::2 benchmark(s) in "
            "BENCH_base.json missing from the fresh run: gone_1, gone_2") in out
    # New benchmarks on the fresh side are informational, not warnings.
    assert "brand_new" in out
    assert "::warning title=benchmarks dropped::1" not in out


def test_no_overlap_short_circuits(tmp_path, capsys):
    status = run(tmp_path, {"only_old": 1.0}, {"only_new": 1.0})
    assert status == 0
    assert "no overlapping benchmarks" in capsys.readouterr().out


@pytest.mark.parametrize("within_threshold", [True, False])
def test_threshold_boundary(tmp_path, capsys, within_threshold):
    fresh = 1.25 if within_threshold else 1.26
    status = run(tmp_path, {"a": 1.0}, {"a": fresh},
                 extra_args=["--threshold", "25", "--fail"])
    assert status == (0 if within_threshold else 1)


def manifest_store(root: Path, scenario: str, stages: dict, elapsed: float) -> Path:
    manifests = root / "manifests"
    manifests.mkdir(parents=True, exist_ok=True)
    payload = {
        "scenario": scenario,
        "elapsed_seconds": elapsed,
        "stage_timings": {
            name: {"count": 1, "total_seconds": wall} for name, wall in stages.items()
        },
    }
    (manifests / f"{scenario}.json").write_text(json.dumps(payload), encoding="utf-8")
    return root


def test_manifest_mode_localises_stage_regressions(tmp_path, capsys):
    base = manifest_store(tmp_path / "old", "fig", {"plan.batched": 1.0, "sim.comparison": 1.0}, 2.0)
    fresh = manifest_store(tmp_path / "new", "fig", {"plan.batched": 2.0, "sim.comparison": 1.0}, 3.0)
    status = compare_bench.main(
        ["--manifests", str(base), str(fresh), "--threshold", "25", "--fail"])
    out = capsys.readouterr().out
    assert status == 1
    assert "! plan.batched: 1.000s -> 2.000s" in out
    assert "  sim.comparison: 1.000s -> 1.000s" in out  # unregressed stage stays unmarked
    assert "::warning title=stage regression::fig/plan.batched" in out
    assert "::warning title=stage regression::fig/sim.comparison" not in out


def test_manifest_mode_compares_the_end_to_end_elapsed(tmp_path, capsys):
    base = manifest_store(tmp_path / "old", "fig", {}, 1.0)
    fresh = manifest_store(tmp_path / "new", "fig", {}, 4.0)
    status = compare_bench.main(["--manifests", str(base), str(fresh), "--fail"])
    assert status == 1
    assert "elapsed: 1.000s -> 4.000s" in capsys.readouterr().out


def test_manifest_mode_without_overlap_short_circuits(tmp_path, capsys):
    base = manifest_store(tmp_path / "old", "one", {}, 1.0)
    fresh = manifest_store(tmp_path / "new", "two", {}, 1.0)
    assert compare_bench.main(["--manifests", str(base), str(fresh), "--fail"]) == 0
    assert "no overlapping scenario manifests" in capsys.readouterr().out


def test_manifest_mode_rejects_an_extra_snapshot_argument(tmp_path):
    with pytest.raises(SystemExit):
        compare_bench.main(["snap.json", "--manifests", "a", "b"])


def test_snapshot_argument_is_still_required_without_manifests():
    with pytest.raises(SystemExit):
        compare_bench.main([])
