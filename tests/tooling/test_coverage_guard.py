"""Unit tests for the CI coverage guard (synthetic reports — the real
coverage run only happens in CI where pytest-cov is installed)."""

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
GUARD_PATH = os.path.join(REPO_ROOT, "tools", "coverage_guard.py")
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "runtime_coverage_baseline.json")


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("coverage_guard", GUARD_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(files):
    return {"files": {
        path: {"summary": {"covered_lines": covered, "missing_lines": missing}}
        for path, (covered, missing) in files.items()
    }}


def test_aggregates_only_the_watched_prefix(guard):
    report = _report({
        "src/repro/runtime/simulator.py": (90, 10),
        "src/repro/runtime/trace.py": (50, 50),
        "src/repro/reporting/gantt.py": (0, 100),  # outside the prefix
    })
    percent = guard.runtime_coverage(report, "src/repro/runtime/")
    assert percent == pytest.approx(100.0 * 140 / 200)


def test_matches_absolute_paths(guard):
    report = _report({"/ci/work/src/repro/runtime/compiled.py": (80, 20)})
    assert guard.runtime_coverage(report, "src/repro/runtime/") == pytest.approx(80.0)


def test_empty_match_is_none_not_zero(guard):
    report = _report({"src/repro/reporting/gantt.py": (10, 0)})
    assert guard.runtime_coverage(report, "src/repro/runtime/") is None


def test_warns_below_baseline_but_exits_zero(guard, tmp_path, capsys):
    report_path = tmp_path / "coverage.json"
    report_path.write_text(json.dumps(_report(
        {"src/repro/runtime/simulator.py": (10, 90),
         "src/repro/telemetry/core.py": (99, 1)})))
    exit_code = guard.main([str(report_path), "--baseline", BASELINE_PATH])
    assert exit_code == 0  # non-blocking by design
    output = capsys.readouterr().out
    assert output.startswith("::warning::")
    assert "below the merge baseline" in output


def test_silent_pass_above_baseline(guard, tmp_path, capsys):
    report_path = tmp_path / "coverage.json"
    report_path.write_text(json.dumps(_report(
        {"src/repro/runtime/simulator.py": (99, 1),
         "src/repro/telemetry/core.py": (99, 1),
         "src/repro/server/app.py": (99, 1)})))
    assert guard.main([str(report_path), "--baseline", BASELINE_PATH]) == 0
    output = capsys.readouterr().out
    assert "::warning::" not in output
    assert "99.00%" in output


def test_missing_subsystem_files_warn_instead_of_reporting_zero(guard, tmp_path, capsys):
    report_path = tmp_path / "coverage.json"
    report_path.write_text(json.dumps(_report({"src/repro/cli.py": (5, 5)})))
    assert guard.main([str(report_path), "--baseline", BASELINE_PATH]) == 0
    assert "never imported" in capsys.readouterr().out


def test_legacy_single_target_baseline_still_works(guard, tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(
        {"prefix": "src/repro/runtime/", "percent": 50.0}))
    report_path = tmp_path / "coverage.json"
    report_path.write_text(json.dumps(_report(
        {"src/repro/runtime/simulator.py": (99, 1)})))
    assert guard.main([str(report_path), "--baseline", str(baseline_path)]) == 0
    output = capsys.readouterr().out
    assert "::warning::" not in output and "99.00%" in output


def test_every_target_is_checked(guard, tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"targets": [
        {"prefix": "src/repro/runtime/", "percent": 50.0},
        {"prefix": "src/repro/telemetry/", "percent": 50.0},
    ]}))
    report_path = tmp_path / "coverage.json"
    report_path.write_text(json.dumps(_report(
        {"src/repro/runtime/simulator.py": (99, 1),
         "src/repro/telemetry/core.py": (10, 90)})))
    assert guard.main([str(report_path), "--baseline", str(baseline_path)]) == 0
    output = capsys.readouterr().out
    assert "src/repro/runtime/ at 99.00%" in output
    assert "below the merge baseline" in output  # the telemetry target fires


def test_committed_baseline_shape():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    prefixes = {target["prefix"] for target in baseline["targets"]}
    assert {"src/repro/runtime/", "src/repro/telemetry/"} <= prefixes
    assert all(0.0 < target["percent"] <= 100.0 for target in baseline["targets"])
