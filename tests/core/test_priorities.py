"""Unit tests for priority-assignment policies."""

import pytest

from repro.core.errors import InvalidTaskSetError
from repro.core.priorities import (
    available_policies,
    deadline_monotonic_priorities,
    explicit_priorities,
    get_priority_policy,
    rate_monotonic_priorities,
    validate_priorities,
)
from repro.core.task import Task


def _tasks():
    return [
        Task("slow", period=40, wcec=10),
        Task("fast", period=10, wcec=10),
        Task("mid", period=20, wcec=10, deadline=5),
    ]


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        priorities = rate_monotonic_priorities(_tasks())
        assert priorities["fast"] < priorities["mid"] < priorities["slow"]

    def test_equal_periods_share_level(self):
        tasks = [Task("a", period=10, wcec=1), Task("b", period=10, wcec=2),
                 Task("c", period=20, wcec=1)]
        priorities = rate_monotonic_priorities(tasks)
        assert priorities["a"] == priorities["b"]
        assert priorities["c"] > priorities["a"]

    def test_empty_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            rate_monotonic_priorities([])


class TestDeadlineMonotonic:
    def test_shorter_deadline_higher_priority(self):
        priorities = deadline_monotonic_priorities(_tasks())
        # "mid" has deadline 5, shorter than "fast"'s implicit deadline 10.
        assert priorities["mid"] < priorities["fast"] < priorities["slow"]


class TestExplicit:
    def test_uses_task_attribute(self):
        tasks = [Task("a", period=10, wcec=1, priority=7), Task("b", period=5, wcec=1, priority=3)]
        priorities = explicit_priorities(tasks)
        assert priorities == {"a": 7, "b": 3}

    def test_missing_priority_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            explicit_priorities([Task("a", period=10, wcec=1)])


class TestRegistry:
    @pytest.mark.parametrize("name", ["rm", "RM", "rate_monotonic", "dm", "deadline_monotonic", "explicit"])
    def test_lookup(self, name):
        assert callable(get_priority_policy(name))

    def test_unknown_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            get_priority_policy("edf")

    def test_available_policies_listed(self):
        names = available_policies()
        assert "rm" in names and "dm" in names and "explicit" in names


class TestValidation:
    def test_missing_task_rejected(self):
        tasks = _tasks()
        with pytest.raises(InvalidTaskSetError):
            validate_priorities(tasks, {"fast": 0})

    def test_extra_task_rejected(self):
        tasks = _tasks()
        priorities = rate_monotonic_priorities(tasks)
        priorities["ghost"] = 9
        with pytest.raises(InvalidTaskSetError):
            validate_priorities(tasks, priorities)

    def test_complete_mapping_passes(self):
        tasks = _tasks()
        validate_priorities(tasks, rate_monotonic_priorities(tasks))
