"""Unit tests for the Task / TaskInstance / SubInstance model."""


import pytest

from repro.core.errors import InvalidTaskError
from repro.core.task import SubInstance, Task, TaskInstance


class TestTaskConstruction:
    def test_defaults_fill_acec_bcec_deadline(self):
        task = Task("t", period=10, wcec=100)
        assert task.acec == 100
        assert task.bcec == 100
        assert task.deadline == 10

    def test_explicit_values_preserved(self):
        task = Task("t", period=10, wcec=100, acec=60, bcec=20, deadline=8)
        assert (task.acec, task.bcec, task.deadline) == (60, 20, 8)

    def test_bcec_defaults_to_acec(self):
        task = Task("t", period=10, wcec=100, acec=40)
        assert task.bcec == 40

    @pytest.mark.parametrize("kwargs", [
        dict(period=0, wcec=10),
        dict(period=-1, wcec=10),
        dict(period=10, wcec=0),
        dict(period=10, wcec=-5),
        dict(period=10, wcec=10, acec=0),
        dict(period=10, wcec=10, acec=20),           # acec > wcec
        dict(period=10, wcec=10, acec=5, bcec=8),     # bcec > acec
        dict(period=10, wcec=10, deadline=0),
        dict(period=10, wcec=10, deadline=11),        # deadline > period
        dict(period=10, wcec=10, ceff=0),
        dict(period=10, wcec=10, phase=-1),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidTaskError):
            Task("t", **kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task("", period=10, wcec=10)


class TestTaskDerived:
    def test_ratio(self):
        task = Task("t", period=10, wcec=100, acec=55, bcec=10)
        assert task.bcec_wcec_ratio == pytest.approx(0.1)

    def test_utilization(self):
        task = Task("t", period=10, wcec=500)
        assert task.utilization(fmax=100.0) == pytest.approx(0.5)
        assert task.average_utilization(fmax=100.0) == pytest.approx(0.5)

    def test_average_utilization_uses_acec(self):
        task = Task("t", period=10, wcec=500, acec=250)
        assert task.average_utilization(fmax=100.0) == pytest.approx(0.25)

    def test_utilization_rejects_bad_fmax(self):
        task = Task("t", period=10, wcec=500)
        with pytest.raises(InvalidTaskError):
            task.utilization(0.0)

    def test_num_jobs(self):
        task = Task("t", period=10, wcec=100)
        assert task.num_jobs(40) == 4
        assert task.num_jobs(45) == 5
        assert task.num_jobs(0) == 0

    def test_num_jobs_with_phase(self):
        task = Task("t", period=10, wcec=100, phase=5)
        assert task.num_jobs(40) == 4  # releases at 5, 15, 25, 35

    def test_release_and_deadline(self):
        task = Task("t", period=10, wcec=100, deadline=8, phase=2)
        assert task.release_time(3) == pytest.approx(32)
        assert task.absolute_deadline(3) == pytest.approx(40)

    def test_release_time_negative_index_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task("t", period=10, wcec=100).release_time(-1)


class TestTaskScaled:
    def test_wcec_scale(self):
        task = Task("t", period=10, wcec=100, acec=60, bcec=20)
        scaled = task.scaled(wcec_scale=2.0)
        assert scaled.wcec == 200
        assert scaled.acec == 120
        assert scaled.bcec == 40
        assert scaled.period == task.period

    def test_bcec_ratio_sets_midpoint_acec(self):
        task = Task("t", period=10, wcec=100)
        scaled = task.scaled(bcec_ratio=0.1)
        assert scaled.bcec == pytest.approx(10)
        assert scaled.acec == pytest.approx(55)
        assert scaled.wcec == pytest.approx(100)

    def test_invalid_scale_rejected(self):
        task = Task("t", period=10, wcec=100)
        with pytest.raises(InvalidTaskError):
            task.scaled(wcec_scale=0.0)
        with pytest.raises(InvalidTaskError):
            task.scaled(bcec_ratio=0.0)
        with pytest.raises(InvalidTaskError):
            task.scaled(bcec_ratio=1.5)


class TestTaskInstance:
    def test_key_and_window(self):
        task = Task("t", period=10, wcec=100)
        instance = TaskInstance(task, job_index=2, release=20, deadline=30, priority=1)
        assert instance.key == "t[2]"
        assert instance.window == pytest.approx(10)
        assert instance.wcec == 100
        assert instance.acec == 100
        assert instance.bcec == 100

    def test_bad_window_rejected(self):
        task = Task("t", period=10, wcec=100)
        with pytest.raises(InvalidTaskError):
            TaskInstance(task, job_index=0, release=10, deadline=10, priority=0)


class TestSubInstance:
    def _instance(self):
        task = Task("t", period=10, wcec=100)
        return TaskInstance(task, job_index=0, release=0, deadline=10, priority=0)

    def test_key_and_slot(self):
        sub = SubInstance(self._instance(), sub_index=1, slot_start=3, slot_end=7)
        assert sub.key == "t[0].1"
        assert sub.slot_length == pytest.approx(4)
        assert sub.priority == 0
        assert sub.task.name == "t"

    def test_with_order(self):
        sub = SubInstance(self._instance(), sub_index=0, slot_start=0, slot_end=10)
        assert sub.order == -1
        assert sub.with_order(5).order == 5

    def test_invalid_slot_rejected(self):
        with pytest.raises(InvalidTaskError):
            SubInstance(self._instance(), sub_index=0, slot_start=5, slot_end=5)
        with pytest.raises(InvalidTaskError):
            SubInstance(self._instance(), sub_index=-1, slot_start=0, slot_end=5)
