"""The exception hierarchy is part of the public API; pin its structure."""

import pytest

from repro.core import errors


def test_all_errors_derive_from_repro_error():
    exception_types = [
        errors.ModelError, errors.InvalidTaskError, errors.InvalidTaskSetError,
        errors.InvalidProcessorError, errors.AnalysisError, errors.InfeasibleTaskSetError,
        errors.SchedulingError, errors.OptimizationError, errors.SimulationError,
        errors.DeadlineMissError, errors.WorkloadError, errors.ExperimentError,
    ]
    for exc in exception_types:
        assert issubclass(exc, errors.ReproError)


def test_specialisation_relationships():
    assert issubclass(errors.InvalidTaskError, errors.ModelError)
    assert issubclass(errors.InvalidTaskSetError, errors.ModelError)
    assert issubclass(errors.InvalidProcessorError, errors.ModelError)
    assert issubclass(errors.InfeasibleTaskSetError, errors.AnalysisError)
    assert issubclass(errors.OptimizationError, errors.SchedulingError)
    assert issubclass(errors.DeadlineMissError, errors.SimulationError)


def test_deadline_miss_error_carries_context():
    error = errors.DeadlineMissError("late", task="t", job_index=3, deadline=10.0, finish_time=11.5)
    assert error.task == "t"
    assert error.job_index == 3
    assert error.deadline == 10.0
    assert error.finish_time == 11.5
    with pytest.raises(errors.ReproError):
        raise error
