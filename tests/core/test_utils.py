"""Tests for the rational/table utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rational import almost_equal, fraction_lcm, lcm_of_values, to_fraction
from repro.utils.tables import format_csv, format_markdown_table


class TestRational:
    def test_lcm_integers(self):
        assert lcm_of_values([10, 20, 25]) == pytest.approx(100)

    def test_lcm_fractions(self):
        assert lcm_of_values([2.5, 4.0]) == pytest.approx(20.0)

    def test_lcm_single_value(self):
        assert lcm_of_values([7.0]) == pytest.approx(7.0)

    def test_lcm_empty_rejected(self):
        with pytest.raises(ValueError):
            lcm_of_values([])

    def test_to_fraction_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            to_fraction(0.0)

    def test_fraction_lcm(self):
        from fractions import Fraction
        assert fraction_lcm(Fraction(3, 2), Fraction(5, 4)) == Fraction(15, 2)

    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + 1e-12)
        assert not almost_equal(1.0, 1.1)

    @given(st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_property_lcm_divisible_by_every_period(self, periods):
        lcm = lcm_of_values([float(p) for p in periods])
        for period in periods:
            ratio = lcm / period
            assert abs(ratio - round(ratio)) < 1e-9


class TestTables:
    def test_markdown_table_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}

    def test_markdown_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])

    def test_markdown_table_bool_rendering(self):
        text = format_markdown_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_csv(self):
        text = format_csv(["a", "b"], [[1, 2.0], [3, 4.5]])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,2"
        assert "4.5" in text
