"""Unit tests for the Timeline / ExecutionSegment trace structures."""

import pytest

from repro.core.errors import SimulationError
from repro.core.timeline import ExecutionSegment, Timeline


def make_segment(start=0.0, end=1.0, frequency=100.0, voltage=2.0, task="t", job=0, sub=0):
    cycles = frequency * (end - start)
    energy = cycles * voltage * voltage
    return ExecutionSegment(task_name=task, job_index=job, sub_index=sub,
                            start=start, end=end, frequency=frequency,
                            voltage=voltage, cycles=cycles, energy=energy)


class TestExecutionSegment:
    def test_duration_and_key(self):
        segment = make_segment(1.0, 3.0, task="a", job=2, sub=1)
        assert segment.duration == pytest.approx(2.0)
        assert segment.key == "a[2].1"

    def test_end_before_start_rejected(self):
        with pytest.raises(SimulationError):
            ExecutionSegment("t", 0, 0, start=2.0, end=1.0, frequency=1, voltage=1,
                             cycles=1, energy=1)

    def test_negative_quantities_rejected(self):
        with pytest.raises(SimulationError):
            ExecutionSegment("t", 0, 0, start=0, end=1, frequency=-1, voltage=1,
                             cycles=1, energy=1)


class TestTimeline:
    def test_aggregates(self):
        timeline = Timeline()
        timeline.append(make_segment(0, 1, frequency=100, voltage=2, task="a"))
        timeline.append(make_segment(1, 3, frequency=50, voltage=1, task="b"))
        assert len(timeline) == 2
        assert timeline.total_busy_time == pytest.approx(3.0)
        assert timeline.total_cycles == pytest.approx(100 + 100)
        assert timeline.total_energy == pytest.approx(100 * 4 + 100 * 1)
        assert timeline.makespan == pytest.approx(3.0)
        assert timeline.energy_by_task() == {"a": pytest.approx(400.0), "b": pytest.approx(100.0)}
        assert timeline.busy_time_by_task() == {"a": pytest.approx(1.0), "b": pytest.approx(2.0)}

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.total_energy == 0
        assert timeline.makespan == 0
        assert timeline.finish_time_of("a", 0) is None

    def test_segments_for_and_finish_time(self):
        timeline = Timeline()
        timeline.append(make_segment(0, 1, task="a", job=0))
        timeline.append(make_segment(2, 3, task="a", job=0))
        timeline.append(make_segment(1, 2, task="a", job=1))
        assert len(timeline.segments_for("a")) == 3
        assert len(timeline.segments_for("a", 0)) == 2
        assert timeline.finish_time_of("a", 0) == pytest.approx(3.0)

    def test_validate_accepts_consistent_trace(self):
        timeline = Timeline([make_segment(0, 1), make_segment(1, 2)])
        timeline.validate()

    def test_validate_rejects_overlap(self):
        timeline = Timeline([make_segment(0, 2), make_segment(1, 3)])
        with pytest.raises(SimulationError):
            timeline.validate()

    def test_validate_rejects_inconsistent_cycles(self):
        bad = ExecutionSegment("t", 0, 0, start=0, end=1, frequency=100, voltage=1,
                               cycles=5.0, energy=5.0)
        with pytest.raises(SimulationError):
            Timeline([bad]).validate()

    def test_sorted_by_time(self):
        timeline = Timeline([make_segment(2, 3), make_segment(0, 1)])
        ordered = timeline.sorted_by_time()
        assert [s.start for s in ordered] == [0, 2]
        # Original untouched.
        assert [s.start for s in timeline] == [2, 0]
