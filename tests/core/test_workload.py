"""Unit and property-based tests for the sequential-fill workload rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkloadError
from repro.core.workload import (
    case_labels,
    fill_average_workloads,
    proportional_split,
    split_evenly,
)


class TestFillAverageWorkloads:
    def test_paper_example(self):
        """The example of Section 3.2: WCEC 30 split as 10/10/10, ACEC 15 → 10/5/0."""
        assert fill_average_workloads([10, 10, 10], 15) == pytest.approx([10, 5, 0])

    def test_exact_fit(self):
        assert fill_average_workloads([10, 10], 20) == pytest.approx([10, 10])

    def test_zero_actual(self):
        assert fill_average_workloads([10, 10], 0) == pytest.approx([0, 0])

    def test_single_budget(self):
        assert fill_average_workloads([30], 12) == pytest.approx([12])

    def test_exceeding_total_rejected(self):
        with pytest.raises(WorkloadError):
            fill_average_workloads([10, 10], 25)

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            fill_average_workloads([10, -1], 5)
        with pytest.raises(WorkloadError):
            fill_average_workloads([10, 10], -5)

    @given(
        budgets=st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), min_size=1, max_size=20),
        fraction=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_conserves_and_bounds(self, budgets, fraction):
        """Σ filled == actual, 0 ≤ filled_k ≤ budget_k, and the fill is prefix-greedy."""
        actual = fraction * sum(budgets)
        filled = fill_average_workloads(budgets, actual)
        assert sum(filled) == pytest.approx(actual, abs=1e-6)
        for value, budget in zip(filled, budgets):
            assert -1e-9 <= value <= budget + 1e-9
        # Prefix-greedy: once a sub-instance is not filled to its budget, all
        # later ones are zero.
        saw_partial = False
        for value, budget in zip(filled, budgets):
            if saw_partial:
                assert value == pytest.approx(0.0, abs=1e-9)
            if value < budget - 1e-9:
                saw_partial = True


class TestCaseLabels:
    def test_paper_example(self):
        assert case_labels([10, 10, 10], 15) == [1, 2, 2]

    def test_all_case_one_when_acec_equals_wcec(self):
        assert case_labels([5, 5], 10) == [1, 1]

    def test_all_case_two_when_acec_zero(self):
        assert case_labels([5, 5], 0) == [2, 2]


class TestSplits:
    def test_split_evenly(self):
        assert split_evenly(9, 3) == pytest.approx([3, 3, 3])

    def test_split_evenly_invalid(self):
        with pytest.raises(WorkloadError):
            split_evenly(9, 0)
        with pytest.raises(WorkloadError):
            split_evenly(-1, 3)

    def test_proportional_split(self):
        assert proportional_split(10, [1, 3]) == pytest.approx([2.5, 7.5])

    def test_proportional_split_zero_weights_falls_back_to_even(self):
        assert proportional_split(10, [0, 0]) == pytest.approx([5, 5])

    def test_proportional_split_invalid(self):
        with pytest.raises(WorkloadError):
            proportional_split(10, [])
        with pytest.raises(WorkloadError):
            proportional_split(10, [1, -1])

    @given(
        total=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        weights=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_proportional_split_conserves_total(self, total, weights):
        parts = proportional_split(total, weights)
        assert sum(parts) == pytest.approx(total, rel=1e-9, abs=1e-6)
