"""Unit tests for the TaskSet container."""

import pytest

from repro.core.errors import InvalidTaskSetError
from repro.core.task import Task
from repro.core.taskset import TaskSet


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            TaskSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            TaskSet([Task("a", period=10, wcec=1), Task("a", period=20, wcec=1)])

    def test_container_protocol(self, two_task_set):
        assert len(two_task_set) == 2
        assert two_task_set["A"].name == "A"
        assert two_task_set[0].name in ("A", "B")
        assert "A" in two_task_set
        assert two_task_set["A"] in two_task_set
        assert "Z" not in two_task_set
        with pytest.raises(KeyError):
            two_task_set["Z"]

    def test_unknown_priority_policy_rejected(self):
        with pytest.raises(InvalidTaskSetError):
            TaskSet([Task("a", period=10, wcec=1)], priority_policy="nonsense")


class TestPriorities:
    def test_rm_default(self, two_task_set):
        assert two_task_set.priority_of("A") < two_task_set.priority_of("B")

    def test_sorted_by_priority(self, three_task_set):
        names = [t.name for t in three_task_set.sorted_by_priority()]
        assert names == ["hi", "mid", "lo"]

    def test_higher_priority_tasks(self, three_task_set):
        higher = [t.name for t in three_task_set.higher_priority_tasks("lo")]
        assert higher == ["hi", "mid"]
        assert three_task_set.higher_priority_tasks("hi") == []

    def test_priority_of_unknown_rejected(self, two_task_set):
        with pytest.raises(InvalidTaskSetError):
            two_task_set.priority_of("nope")


class TestDerived:
    def test_hyperperiod(self, three_task_set):
        assert three_task_set.hyperperiod == pytest.approx(40)

    def test_hyperperiod_fractional_periods(self):
        taskset = TaskSet([Task("a", period=2.5, wcec=1), Task("b", period=4.0, wcec=1)])
        assert taskset.hyperperiod == pytest.approx(20.0)

    def test_utilization(self, two_task_set):
        assert two_task_set.utilization(1000.0) == pytest.approx(0.7)
        assert two_task_set.average_utilization(1000.0) == pytest.approx(0.37)

    def test_totals_per_hyperperiod(self, two_task_set):
        # Hyperperiod 20: task A runs twice, task B once.
        assert two_task_set.total_wcec_per_hyperperiod() == pytest.approx(2 * 3000 + 8000)
        assert two_task_set.total_acec_per_hyperperiod() == pytest.approx(2 * 1500 + 4400)


class TestInstances:
    def test_instances_cover_hyperperiod(self, two_task_set):
        instances = two_task_set.instances()
        keys = [i.key for i in instances]
        assert keys == ["A[0]", "B[0]", "A[1]"]

    def test_instances_custom_horizon(self, two_task_set):
        instances = two_task_set.instances(40)
        assert len(instances) == 4 + 2

    def test_instances_bad_horizon(self, two_task_set):
        with pytest.raises(InvalidTaskSetError):
            two_task_set.instances(0)

    def test_instances_sorted_by_release_then_priority(self, three_task_set):
        instances = three_task_set.instances()
        releases = [i.release for i in instances]
        assert releases == sorted(releases)
        first_three = [i.task.name for i in instances[:3]]
        assert first_three == ["hi", "mid", "lo"]


class TestTransformations:
    def test_with_bcec_ratio(self, two_task_set):
        scaled = two_task_set.with_bcec_ratio(0.1)
        for task in scaled:
            assert task.bcec == pytest.approx(0.1 * task.wcec)
            assert task.acec == pytest.approx(0.55 * task.wcec)

    def test_scaled_to_utilization(self, two_task_set):
        scaled = two_task_set.scaled_to_utilization(0.35, fmax=1000.0)
        assert scaled.utilization(1000.0) == pytest.approx(0.35)
        # Relative WCEC weights preserved.
        assert scaled["A"].wcec / scaled["B"].wcec == pytest.approx(3000 / 8000)

    def test_scaled_to_utilization_rejects_nonpositive(self, two_task_set):
        with pytest.raises(InvalidTaskSetError):
            two_task_set.scaled_to_utilization(0.0, fmax=1000.0)

    def test_renamed(self, two_task_set):
        assert two_task_set.renamed("other").name == "other"

    def test_describe_mentions_every_task(self, three_task_set):
        text = three_task_set.describe()
        for task in three_task_set:
            assert task.name in text
