#!/usr/bin/env python3
"""Check that relative Markdown links in the repo point at existing files.

Used by the CI docs job:  python docs/check_links.py

External links (http/https/mailto) are not fetched — CI must not depend on
network reachability; only repo-relative targets are verified.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check(root: Path) -> int:
    errors = 0
    for markdown in iter_markdown(root):
        for target in LINK.findall(markdown.read_text(encoding="utf-8")):
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (markdown.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                print(f"{markdown.relative_to(root)}: broken link -> {target}")
                errors += 1
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors = check(root)
    if errors:
        print(f"{errors} broken link(s)")
        return 1
    print("all relative Markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
