#!/usr/bin/env python
"""Non-blocking coverage floor for the watched subsystems.

Reads a ``coverage.py`` JSON report (``coverage json`` / ``pytest --cov
--cov-report=json``), aggregates line coverage over every file under each
watched prefix and compares it against the committed baseline in
``tools/runtime_coverage_baseline.json``.  The baseline is either the legacy
single-target form (``{"prefix": ..., "percent": ...}``) or a list:
``{"targets": [{"prefix": ..., "percent": ...}, ...]}``.

A drop below the baseline emits a GitHub ``::warning::`` annotation and the
script still exits 0 — coverage is a trend signal here, not a merge gate
(shared-runner flakiness and matrix skews would make a hard gate noisy).
Raise the baseline deliberately whenever real coverage lands; never raise it
to whatever the latest run happened to produce.

Usage::

    python tools/coverage_guard.py coverage.json
    python tools/coverage_guard.py coverage.json --baseline tools/runtime_coverage_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "runtime_coverage_baseline.json")


def runtime_coverage(report: dict, prefix: str) -> Optional[float]:
    """Aggregate percent line coverage of every report file under ``prefix``.

    Returns ``None`` when the report contains no matching files (e.g. the
    suite ran without importing the runtime at all) so the caller can warn
    about the guard itself being blind rather than reporting 0%.
    """
    normalized_prefix = prefix.replace("\\", "/").rstrip("/") + "/"
    covered = 0
    total = 0
    for path, data in report.get("files", {}).items():
        normalized = path.replace("\\", "/")
        # Reports may carry absolute paths; substring-match the prefix.
        if normalized_prefix not in normalized:
            continue
        summary = data.get("summary", {})
        file_covered = int(summary.get("covered_lines", 0))
        file_missing = int(summary.get("missing_lines", 0))
        covered += file_covered
        total += file_covered + file_missing
    if total == 0:
        return None
    return 100.0 * covered / total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage.py JSON report file")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON file with 'prefix' and 'percent'")
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    targets = baseline.get("targets")
    if targets is None:  # legacy single-target baseline
        targets = [{"prefix": baseline.get("prefix", "src/repro/runtime/"),
                    "percent": baseline["percent"]}]
    for target in targets:
        prefix = target["prefix"]
        floor = float(target["percent"])
        percent = runtime_coverage(report, prefix)
        if percent is None:
            print(f"::warning::coverage guard: no files under {prefix!r} in the "
                  f"report — that subsystem was never imported?")
            continue
        line = (f"coverage guard: {prefix} at {percent:.2f}% line coverage "
                f"(baseline {floor:.2f}%)")
        if percent < floor:
            print(f"::warning::{line} — below the merge baseline; see "
                  f"tools/runtime_coverage_baseline.json before raising or lowering it")
        else:
            print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
